// Query digest table: per-class workload profiling (docs/OBSERVABILITY.md
// §9).
//
// Every answered query is normalized into a DIGEST KEY — query kind x
// bound mode x region-size decile x store kind x query path — and its cost
// profile folds into that digest's rolling stats: count, structural cost
// counter sums, and a latency histogram for p50/p95. The key space is
// small and fixed (kDigestSlots = 2*3*10*2*4 = 480), so the table is a
// flat array allocated once; Record() is lock-free (relaxed fetch_adds on
// per-thread-sharded cells, the metrics.h idiom) and allocation-free, safe
// on the zero-allocation warm query path.
//
// Reads merge the cells: exact once writers quiesce, slightly racy while
// they don't — the same contract as every registry metric. TopK() ranks
// digests by total accumulated query time, which is the "where does the
// serving time actually go" view /queryz serves.
#ifndef INNET_OBS_QUERY_DIGEST_H_
#define INNET_OBS_QUERY_DIGEST_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/query_cost.h"

namespace innet::obs {

/// Digest key axis sizes. The index packs as
///   ((((kind * kDigestBounds + bound) * 10 + decile) * kDigestStores
///      + store) * kQueryPathKinds + path)
inline constexpr size_t kDigestKinds = 2;    // static, transient
inline constexpr size_t kDigestBounds = 3;   // lower, upper, exact
inline constexpr size_t kDigestDeciles = 10;
inline constexpr size_t kDigestStores = 2;   // exact, learned
inline constexpr size_t kDigestSlots = kDigestKinds * kDigestBounds *
                                       kDigestDeciles * kDigestStores *
                                       kQueryPathKinds;

/// Packs a profile's classification axes into its digest slot index.
size_t DigestIndex(const QueryCostProfile& profile);

/// Decoded digest key (the inverse of DigestIndex).
struct DigestKey {
  uint8_t kind = 0;
  uint8_t bound = 0;
  uint8_t decile = 0;
  uint8_t store_kind = 0;
  QueryPathKind path = QueryPathKind::kUncached;
};
DigestKey DecodeDigest(size_t index);

const char* DigestKindName(uint8_t kind);    // "static" / "transient"
const char* DigestBoundName(uint8_t bound);  // "lower" / "upper" / "exact"
const char* DigestStoreName(uint8_t store);  // "exact" / "learned"

/// One digest's merged statistics, as returned by TopK().
struct QueryDigestRow {
  DigestKey key;
  uint64_t count = 0;
  uint64_t missed = 0;
  // Cost counter SUMS across the digest's queries.
  uint64_t faces = 0;
  uint64_t boundary_edges = 0;
  uint64_t boundary_sensors = 0;
  uint64_t csr_timestamps = 0;
  uint64_t bucket_probes = 0;
  // Stage time sums, microseconds.
  double total_micros = 0.0;
  double resolve_micros = 0.0;
  double integrate_micros = 0.0;
  // Bucket-interpolated latency quantiles, microseconds.
  double p50_micros = 0.0;
  double p95_micros = 0.0;

  /// Human-readable key, e.g. "static/lower/d3/exact/cache_hit".
  std::string Label() const;
};

/// Lock-free sharded digest table. One table per serving process (tools
/// attach it to the engine and the telemetry server); tests build private
/// ones. ~2 MiB of pre-allocated accumulators, nothing allocated after
/// construction.
class QueryDigestTable {
 public:
  QueryDigestTable();
  QueryDigestTable(const QueryDigestTable&) = delete;
  QueryDigestTable& operator=(const QueryDigestTable&) = delete;

  /// Folds one profile into its digest. Lock-free, allocation-free, and
  /// single-writer on the calling thread's private cell (plain relaxed
  /// load+store, ~20ns); threads past the cell count share one overflow
  /// cell through fetch_adds, so totals stay exact at any thread count.
  void Record(const QueryCostProfile& profile);

  /// Total profiles recorded (exact once writers quiesce). Sums the
  /// per-cell counts — a read-side scan, so Record stays a pure
  /// cell-local write.
  uint64_t TotalRecorded() const;
  /// Digests with at least one recorded query.
  size_t DistinctDigests() const;

  /// The k digests with the largest total accumulated query time,
  /// descending (ties broken by slot index for determinism).
  std::vector<QueryDigestRow> TopK(size_t k) const;

  /// Full /queryz JSON document:
  ///   {"recorded":N,"digests":M,"top":[{...row...},...]}
  std::string ToJson(size_t top_k) const;

 private:
  // Per-thread write sharding: each slot holds kCells cache-line-aligned
  // accumulator cells. Cells 0..kCells-2 are SINGLE-WRITER — owned by the
  // first kCells-1 threads that ever Record (a digest-private sequential
  // registration, see query_digest.cc), so their ~11 adds per Record are
  // plain load+store with no lock prefix and no line sharing. Recording
  // threads registered later all share the last cell via fetch_adds:
  // slower, but sums stay exact at any thread count. Hot workloads funnel
  // into a handful of digests, so any uncoordinated sharing would
  // ping-pong those lines on every query.
  static constexpr size_t kCells = internal::kMetricCells;
  // Latency histogram buckets: Histogram::LatencyBoundsMicros() bounds
  // (1us..~1s doubling, 21 bounds) + overflow.
  static constexpr size_t kLatencyBuckets = 22;

  // integrate_nanos is NOT accumulated: it is total - resolve by
  // construction, so MergeSlot derives it and Record saves an add.
  struct alignas(64) Cell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> missed{0};
    std::atomic<uint64_t> faces{0};
    std::atomic<uint64_t> boundary_edges{0};
    std::atomic<uint64_t> boundary_sensors{0};
    std::atomic<uint64_t> csr_timestamps{0};
    std::atomic<uint64_t> bucket_probes{0};
    std::atomic<uint64_t> total_nanos{0};
    std::atomic<uint64_t> resolve_nanos{0};
    std::array<std::atomic<uint64_t>, kLatencyBuckets> latency{};
  };
  struct Slot {
    std::array<Cell, kCells> cells;
  };

  /// Merges one slot's cells into a row (key left to the caller).
  QueryDigestRow MergeSlot(size_t index) const;

  std::unique_ptr<Slot[]> slots_;
  std::vector<double> latency_bounds_;
};

}  // namespace innet::obs

#endif  // INNET_OBS_QUERY_DIGEST_H_
