#include "obs/query_digest.h"

#include <algorithm>

#include "obs/export.h"

namespace innet::obs {

namespace {

/// Digest-private thread registration. metrics.h's ThreadCellIndex counts
/// every thread that ever touched a metric, so a query worker pool spun up
/// late in a process's life would land entirely in the overflow cell and
/// contend. Only threads that actually Record() draw from this sequence,
/// keeping the first kCells-1 RECORDING threads on private cells.
size_t RecordingThreadIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

/// One accumulate: a plain load+store when the cell has a single writer
/// (no lock prefix — the warm-path case), a fetch_add on the shared
/// overflow cell.
inline void Add(std::atomic<uint64_t>& cell, uint64_t delta,
                bool exclusive) {
  if (delta == 0) return;
  if (exclusive) {
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  } else {
    cell.fetch_add(delta, std::memory_order_relaxed);
  }
}

}  // namespace

size_t DigestIndex(const QueryCostProfile& profile) {
  size_t kind = profile.kind % kDigestKinds;
  size_t bound = profile.bound % kDigestBounds;
  size_t decile = profile.region_decile % kDigestDeciles;
  size_t store = profile.store_kind % kDigestStores;
  size_t path = static_cast<size_t>(profile.path) % kQueryPathKinds;
  return (((kind * kDigestBounds + bound) * kDigestDeciles + decile) *
              kDigestStores +
          store) *
             kQueryPathKinds +
         path;
}

DigestKey DecodeDigest(size_t index) {
  DigestKey key;
  key.path = static_cast<QueryPathKind>(index % kQueryPathKinds);
  index /= kQueryPathKinds;
  key.store_kind = static_cast<uint8_t>(index % kDigestStores);
  index /= kDigestStores;
  key.decile = static_cast<uint8_t>(index % kDigestDeciles);
  index /= kDigestDeciles;
  key.bound = static_cast<uint8_t>(index % kDigestBounds);
  index /= kDigestBounds;
  key.kind = static_cast<uint8_t>(index % kDigestKinds);
  return key;
}

const char* DigestKindName(uint8_t kind) {
  return kind == 0 ? "static" : "transient";
}

const char* DigestBoundName(uint8_t bound) {
  switch (bound) {
    case 0:
      return "lower";
    case 1:
      return "upper";
    default:
      return "exact";
  }
}

const char* DigestStoreName(uint8_t store) {
  return store == 0 ? "exact" : "learned";
}

std::string QueryDigestRow::Label() const {
  std::string label = DigestKindName(key.kind);
  label += "/";
  label += DigestBoundName(key.bound);
  label += "/d";
  label += std::to_string(key.decile);
  label += "/";
  label += DigestStoreName(key.store_kind);
  label += "/";
  label += QueryPathKindName(key.path);
  return label;
}

QueryDigestTable::QueryDigestTable()
    : slots_(new Slot[kDigestSlots]),
      latency_bounds_(Histogram::LatencyBoundsMicros()) {}

void QueryDigestTable::Record(const QueryCostProfile& profile) {
  // Threads registered below kCells-1 own their cell outright; everyone
  // later shares the last cell (see the kCells comment in the header).
  size_t thread_index = RecordingThreadIndex();
  bool exclusive = thread_index < kCells - 1;
  Cell& cell = slots_[DigestIndex(profile)]
                    .cells[exclusive ? thread_index : kCells - 1];
  Add(cell.count, 1, exclusive);
  if (profile.missed) Add(cell.missed, 1, exclusive);
  Add(cell.faces, profile.faces_resolved, exclusive);
  Add(cell.boundary_edges, profile.boundary_edges, exclusive);
  Add(cell.boundary_sensors, profile.boundary_sensors, exclusive);
  Add(cell.csr_timestamps, profile.csr_timestamps, exclusive);
  Add(cell.bucket_probes, profile.bucket_probes, exclusive);
  Add(cell.total_nanos, profile.total_nanos, exclusive);
  Add(cell.resolve_nanos, profile.resolve_nanos, exclusive);
  // Latency bucket: first bound >= the observed micros; bounds.size()
  // (the overflow slot) when none is. Early exit — warm sub-micro queries
  // match the first bound.
  double micros = static_cast<double>(profile.total_nanos) / 1000.0;
  size_t bucket = latency_bounds_.size();
  for (size_t i = 0; i < latency_bounds_.size(); ++i) {
    if (micros <= latency_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  Add(cell.latency[bucket], 1, exclusive);
}

QueryDigestRow QueryDigestTable::MergeSlot(size_t index) const {
  QueryDigestRow row;
  row.key = DecodeDigest(index);
  uint64_t total_nanos = 0;
  uint64_t resolve_nanos = 0;
  std::vector<uint64_t> latency(kLatencyBuckets, 0);
  for (const Cell& cell : slots_[index].cells) {
    row.count += cell.count.load(std::memory_order_relaxed);
    row.missed += cell.missed.load(std::memory_order_relaxed);
    row.faces += cell.faces.load(std::memory_order_relaxed);
    row.boundary_edges +=
        cell.boundary_edges.load(std::memory_order_relaxed);
    row.boundary_sensors +=
        cell.boundary_sensors.load(std::memory_order_relaxed);
    row.csr_timestamps +=
        cell.csr_timestamps.load(std::memory_order_relaxed);
    row.bucket_probes += cell.bucket_probes.load(std::memory_order_relaxed);
    total_nanos += cell.total_nanos.load(std::memory_order_relaxed);
    resolve_nanos += cell.resolve_nanos.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kLatencyBuckets; ++b) {
      latency[b] += cell.latency[b].load(std::memory_order_relaxed);
    }
  }
  row.total_micros = static_cast<double>(total_nanos) / 1000.0;
  row.resolve_micros = static_cast<double>(resolve_nanos) / 1000.0;
  // Derived, not accumulated: integrate = total - resolve by definition
  // of the stage split.
  row.integrate_micros =
      total_nanos > resolve_nanos
          ? static_cast<double>(total_nanos - resolve_nanos) / 1000.0
          : 0.0;
  if (row.count > 0) {
    row.p50_micros = PercentileFromBucketCounts(latency_bounds_, latency, 0.50);
    row.p95_micros = PercentileFromBucketCounts(latency_bounds_, latency, 0.95);
  }
  return row;
}

uint64_t QueryDigestTable::TotalRecorded() const {
  uint64_t total = 0;
  for (size_t s = 0; s < kDigestSlots; ++s) {
    for (const Cell& cell : slots_[s].cells) {
      total += cell.count.load(std::memory_order_relaxed);
    }
  }
  return total;
}

size_t QueryDigestTable::DistinctDigests() const {
  size_t distinct = 0;
  for (size_t s = 0; s < kDigestSlots; ++s) {
    for (const Cell& cell : slots_[s].cells) {
      if (cell.count.load(std::memory_order_relaxed) > 0) {
        ++distinct;
        break;
      }
    }
  }
  return distinct;
}

std::vector<QueryDigestRow> QueryDigestTable::TopK(size_t k) const {
  std::vector<QueryDigestRow> rows;
  for (size_t s = 0; s < kDigestSlots; ++s) {
    QueryDigestRow row = MergeSlot(s);
    if (row.count > 0) rows.push_back(std::move(row));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const QueryDigestRow& a, const QueryDigestRow& b) {
                     return a.total_micros > b.total_micros;
                   });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

std::string QueryDigestTable::ToJson(size_t top_k) const {
  std::vector<QueryDigestRow> rows = TopK(top_k);
  std::string out = "{\"recorded\":";
  out += std::to_string(TotalRecorded());
  out += ",\"digests\":";
  out += std::to_string(DistinctDigests());
  out += ",\"top\":[";
  bool first = true;
  for (const QueryDigestRow& row : rows) {
    if (!first) out += ",";
    first = false;
    out += "{\"digest\":\"";
    out += JsonEscape(row.Label());
    out += "\",\"kind\":\"";
    out += DigestKindName(row.key.kind);
    out += "\",\"bound\":\"";
    out += DigestBoundName(row.key.bound);
    out += "\",\"decile\":";
    out += std::to_string(row.key.decile);
    out += ",\"store\":\"";
    out += DigestStoreName(row.key.store_kind);
    out += "\",\"path\":\"";
    out += QueryPathKindName(row.key.path);
    out += "\",\"count\":";
    out += std::to_string(row.count);
    out += ",\"missed\":";
    out += std::to_string(row.missed);
    out += ",\"latency\":{\"total_micros\":";
    JsonAppendNumber(&out, row.total_micros);
    out += ",\"resolve_micros\":";
    JsonAppendNumber(&out, row.resolve_micros);
    out += ",\"integrate_micros\":";
    JsonAppendNumber(&out, row.integrate_micros);
    out += ",\"p50_micros\":";
    JsonAppendNumber(&out, row.p50_micros);
    out += ",\"p95_micros\":";
    JsonAppendNumber(&out, row.p95_micros);
    out += "},\"cost\":{\"faces\":";
    out += std::to_string(row.faces);
    out += ",\"boundary_edges\":";
    out += std::to_string(row.boundary_edges);
    out += ",\"boundary_sensors\":";
    out += std::to_string(row.boundary_sensors);
    out += ",\"csr_timestamps\":";
    out += std::to_string(row.csr_timestamps);
    out += ",\"bucket_probes\":";
    out += std::to_string(row.bucket_probes);
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace innet::obs
