// Online accuracy monitoring (docs/OBSERVABILITY.md §"Accuracy & EXPLAIN").
//
// Two instruments turn the serving stack from "fast" into "fast and
// self-aware":
//
//   - AccuracyMonitor aggregates shadow checks: a configurable 1-in-N
//     fraction of sampled answers is re-executed against the exact
//     unsampled path (by runtime::BatchQueryEngine, off the hot path) and
//     the SIGNED relative error is fed into registry histograms —
//     `innet_accuracy_rel_error` overall plus one histogram per
//     region-size decile — together with `innet_deadspace_fraction` and
//     `innet_interval_width`.
//   - DriftDetector tracks rolling residuals of learned::CountModel
//     predictions against observed crossing counts and flips the
//     `innet_model_drift_alarm` gauge once the rolling mean relative
//     residual crosses a pinned threshold.
//
// Both are layer-free (registry + plain numbers in), so the obs library
// stays below core; the shadow executor lives in runtime.
#ifndef INNET_OBS_ACCURACY_H_
#define INNET_OBS_ACCURACY_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

#include "obs/metrics.h"

namespace innet::obs {

/// AccuracyMonitor construction knobs.
struct AccuracyMonitorOptions {
  /// Shadow 1 of every N answered queries; must be >= 1 (a zero or
  /// negative value is a caller bug — tools validate their flags before
  /// building one of these).
  uint64_t shadow_every = 8;

  /// Total junction cells of the deployment's sensing domain; region-size
  /// deciles are `region_cells * 10 / total_cells`, clamped to [0, 9].
  /// 0 puts every observation into decile 0.
  size_t total_cells = 0;

  /// Registry backing the accuracy metrics; nullptr selects the process
  /// global registry. Must outlive the monitor when provided.
  MetricsRegistry* registry = nullptr;
};

/// Aggregates shadow-execution comparisons between approximate (sampled)
/// and exact (unsampled) answers. Thread-safe: ShouldShadow is a single
/// atomic increment and RecordComparison takes one short lock (it runs on
/// the shadow thread, never on the query hot path).
class AccuracyMonitor {
 public:
  explicit AccuracyMonitor(const AccuracyMonitorOptions& options);
  AccuracyMonitor(const AccuracyMonitor&) = delete;
  AccuracyMonitor& operator=(const AccuracyMonitor&) = delete;

  /// True for 1 of every `shadow_every` calls (the 1st, N+1st, ...).
  bool ShouldShadow() {
    return scheduled_.fetch_add(1, std::memory_order_relaxed) %
               options_.shadow_every ==
           0;
  }

  /// Feeds one shadow comparison. `approx` is the sampled answer, `exact`
  /// the unsampled reference; the recorded signed relative error is
  /// (approx - exact) / |exact| (0 when both are 0, +/-1 when only the
  /// exact count is 0 — matching util::RelativeError in magnitude).
  void RecordComparison(double approx, double exact, size_t region_cells,
                        double deadspace_fraction, double interval_width);

  uint64_t Comparisons() const;
  /// Exact running means over every recorded comparison (not
  /// bucket-interpolated), for tests and report lines.
  double MeanAbsRelError() const;
  double MeanSignedRelError() const;

  const AccuracyMonitorOptions& options() const { return options_; }

  /// Signed relative error of one comparison (the exact formula
  /// RecordComparison feeds the histograms).
  static double SignedRelativeError(double exact, double approx);

 private:
  static constexpr size_t kDeciles = 10;

  AccuracyMonitorOptions options_;
  std::atomic<uint64_t> scheduled_{0};

  Counter* comparisons_;
  Histogram* rel_error_;
  std::array<Histogram*, kDeciles> rel_error_by_decile_;
  Histogram* deadspace_;
  Histogram* interval_width_;

  mutable std::mutex mutex_;
  uint64_t count_ = 0;
  double abs_error_sum_ = 0.0;
  double signed_error_sum_ = 0.0;
};

/// DriftDetector construction knobs. The defaults are the pinned serving
/// configuration; tests that need a different trip point build their own.
struct DriftDetectorOptions {
  /// Rolling residual window (observations).
  size_t window = 64;
  /// Observations required before the alarm may fire at all.
  size_t min_observations = 32;
  /// Pinned alarm threshold on the rolling mean relative residual.
  double threshold = 0.1;
  /// Registry for `innet_model_drift_alarm` / `innet_model_drift_residual`;
  /// nullptr selects the global registry.
  MetricsRegistry* registry = nullptr;
};

/// Tracks rolling residuals of a learned count model against observed
/// crossing counts. On each new event, Observe() is called with the model's
/// prediction for the event's time BEFORE the event is folded into the
/// model, audited against the cumulative count of PRIOR events (the
/// arriving event is information the model cannot have had — comparing
/// against it would bake a 1/n floor into the residual); the relative
/// residual |predicted - observed| / max(1, |observed|) enters a rolling
/// window. Once the window holds
/// `min_observations` samples and its mean exceeds `threshold`, the
/// `innet_model_drift_alarm` gauge flips to 1 (and back to 0 if the model
/// re-converges); Fired() stays latched.
///
/// Not thread-safe: one detector audits one model's ingestion stream,
/// which is single-threaded by the store contract.
class DriftDetector {
 public:
  explicit DriftDetector(const DriftDetectorOptions& options);
  DriftDetector(const DriftDetector&) = delete;
  DriftDetector& operator=(const DriftDetector&) = delete;

  void Observe(double predicted, double observed);

  /// Rolling mean relative residual over the current window (0 if empty).
  double RollingResidual() const;
  /// Alarm currently raised.
  bool Alarmed() const { return alarmed_; }
  /// Alarm raised at least once since construction.
  bool Fired() const { return fired_; }
  uint64_t Observations() const { return observations_; }

 private:
  DriftDetectorOptions options_;
  Gauge* alarm_;
  Gauge* residual_;

  std::deque<double> window_;
  double window_sum_ = 0.0;
  uint64_t observations_ = 0;
  bool alarmed_ = false;
  bool fired_ = false;
};

}  // namespace innet::obs

#endif  // INNET_OBS_ACCURACY_H_
