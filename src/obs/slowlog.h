// Rate-limited structured slow-query log (docs/OBSERVABILITY.md §9).
//
// Queries whose total latency (or boundary size — a cost threshold for
// catching "fast but enormous" regressions) crosses a pinned threshold
// emit ONE JSON-lines record carrying the full cost profile and the
// query's ExplainRecord. A token bucket bounds the emission rate, so a
// pathological workload cannot turn the log into its own outage;
// suppressed records are counted (`innet_slowlog_suppressed_total`)
// instead of silently dropped.
//
// Warm-path contract: IsSlow() is an inline threshold compare — the only
// cost the 99.9% of fast queries pay. Admit() and Record() run only for
// slow queries, where a mutex and a file append are noise against the
// query's own latency.
#ifndef INNET_OBS_SLOWLOG_H_
#define INNET_OBS_SLOWLOG_H_

#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/query_cost.h"
#include "util/timer.h"

namespace innet::obs {

struct SlowQueryLogOptions {
  /// Latency threshold: a query is slow when total_nanos >= this many
  /// microseconds. Must be > 0.
  double threshold_micros = 10000.0;

  /// Optional cost threshold: boundary_edges >= this also marks a query
  /// slow. 0 disables the cost axis.
  uint64_t threshold_boundary_edges = 0;

  /// Token bucket: at most `burst` records back-to-back, refilling at
  /// `max_records_per_sec`. Both must be > 0.
  double max_records_per_sec = 10.0;
  size_t burst = 20;

  /// Most recent records retained in memory for /queryz?slow=1.
  size_t keep_last = 64;

  /// JSON-lines output file, appended and flushed per record; "" keeps
  /// the log memory-only (the ring still fills).
  std::string path;

  /// Backs `innet_slowlog_records_total` / `innet_slowlog_suppressed_total`;
  /// nullptr selects the process global registry.
  MetricsRegistry* registry = nullptr;
};

/// Threshold + rate-limit + sink for slow-query records. Thread-safe:
/// IsSlow is lock-free; Admit/Record serialize on one mutex (slow path
/// only, by construction).
class SlowQueryLog {
 public:
  explicit SlowQueryLog(const SlowQueryLogOptions& options);
  ~SlowQueryLog();
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// The warm-path gate: pure threshold compare, no locks, no side
  /// effects.
  bool IsSlow(const QueryCostProfile& profile) const {
    return profile.total_nanos >= threshold_nanos_ ||
           (options_.threshold_boundary_edges > 0 &&
            profile.boundary_edges >= options_.threshold_boundary_edges);
  }

  /// Charges the token bucket. True = caller should build the explain
  /// record and call Record(); false = over budget, the suppression
  /// counter was incremented and nothing else happens.
  bool Admit();

  /// Formats one JSON record (profile + explain), appends it to the file
  /// (when configured) and to the in-memory ring. Call only after Admit()
  /// returned true.
  void Record(const QueryCostProfile& profile, const ExplainRecord& explain);

  /// Most recent records, oldest first — each entry one complete JSON
  /// object, as written to the file.
  std::vector<std::string> RecentRecords() const;

  uint64_t Records() const { return records_->Value(); }
  uint64_t Suppressed() const { return suppressed_->Value(); }

  const SlowQueryLogOptions& options() const { return options_; }

 private:
  SlowQueryLogOptions options_;
  uint64_t threshold_nanos_;

  Counter* records_;
  Counter* suppressed_;

  mutable std::mutex mutex_;
  // Token bucket state (guarded by mutex_): refilled from the wall clock
  // on every Admit.
  double tokens_;
  util::Timer refill_timer_;
  std::deque<std::string> ring_;
  std::ofstream file_;
};

}  // namespace innet::obs

#endif  // INNET_OBS_SLOWLOG_H_
