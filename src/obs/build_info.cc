#include "obs/build_info.h"

#include <chrono>

#include "obs/export.h"
#include "util/simd.h"

#ifndef INNET_VERSION
#define INNET_VERSION "0.8.0"
#endif

#ifndef INNET_GIT_SHA
#define INNET_GIT_SHA "unknown"
#endif

namespace innet::obs {

namespace {

std::string CompilerString() {
#if defined(__clang__)
  return "clang-" + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc-" + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point kStart =
      std::chrono::steady_clock::now();
  return kStart;
}

}  // namespace

const char* BuildVersion() { return INNET_VERSION; }

const char* BuildGitSha() { return INNET_GIT_SHA; }

const char* BuildCompiler() {
  static const std::string* const kCompiler =
      new std::string(CompilerString());
  return kCompiler->c_str();
}

const char* BuildSimd() { return util::simd::ActiveSimdName(); }

Gauge& RegisterBuildInfo(MetricsRegistry& registry) {
  std::string labels = "version=\"";
  labels += PrometheusEscapeLabel(BuildVersion());
  labels += "\",git_sha=\"";
  labels += PrometheusEscapeLabel(BuildGitSha());
  labels += "\",compiler=\"";
  labels += PrometheusEscapeLabel(BuildCompiler());
  labels += "\",simd=\"";
  labels += PrometheusEscapeLabel(BuildSimd());
  labels += "\"";
  Gauge& info = registry.GetGaugeWithLabels(
      "innet_build_info", labels,
      "Constant 1; labels identify the running build");
  info.Set(1.0);
  return registry.GetGauge("innet_uptime_seconds",
                           "Seconds since process start, refreshed on "
                           "collector ticks and before file export");
}

double UptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ProcessStart())
      .count();
}

}  // namespace innet::obs
