// Process-wide metrics: named counters, gauges, and fixed-bucket
// histograms behind a MetricsRegistry (docs/OBSERVABILITY.md).
//
// Hot-path increments must not contend: every Counter and Histogram is
// sharded into cache-line-aligned per-thread cells (a thread hashes to one
// cell and only ever touches that cache line), merged on read. Reads are
// therefore O(cells) and slightly racy against in-flight increments —
// exact once writers quiesce, which is the contract every exporter and
// Snapshot() consumer in this repo relies on.
//
// Registration is cheap but locked; callers resolve a metric ONCE (at
// construction / first use) and hold the pointer. Registered metrics are
// never deleted, so pointers stay valid for the registry's lifetime.
#ifndef INNET_OBS_METRICS_H_
#define INNET_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace innet::obs {

namespace internal {

/// Stable small index for the calling thread, used to pick a metric cell.
size_t ThreadCellIndex();

/// Cells per sharded metric. Power of two; distinct threads beyond this
/// count share cells (correctness is unaffected, only contention).
inline constexpr size_t kMetricCells = 16;

struct alignas(64) CounterCell {
  std::atomic<uint64_t> value{0};
};

}  // namespace internal

/// Monotonic counter. Increment is one relaxed fetch_add on the calling
/// thread's cell; Value() merges all cells.
class Counter {
 public:
  explicit Counter(std::string name, std::string help = "");
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    cells_[internal::ThreadCellIndex() & (internal::kMetricCells - 1)]
        .value.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const;

  /// Zeroes every cell. Not atomic with respect to concurrent increments;
  /// callers reset only while writers are quiescent (ResetStats contract).
  void Reset();

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  std::string name_;
  std::string help_;
  std::array<internal::CounterCell, internal::kMetricCells> cells_;
};

/// Last-write-wins instantaneous value (e.g. sensors currently dead).
///
/// A gauge may carry a fixed Prometheus label set (`labels()`, e.g.
/// `version="0.8",git_sha="abc"`), attached at registration via
/// MetricsRegistry::GetGaugeWithLabels. Exporters emit `name{labels} value`;
/// distinct label sets of one family are distinct registry entries.
class Gauge {
 public:
  explicit Gauge(std::string name, std::string help = "",
                 std::string labels = "");
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  /// Pre-escaped `key="value"` pairs, or "" for an unlabeled gauge.
  const std::string& labels() const { return labels_; }

 private:
  std::string name_;
  std::string help_;
  std::string labels_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are ascending inclusive upper bounds;
/// an implicit +inf bucket catches the overflow. Observe() touches only the
/// calling thread's cell. Percentile() interpolates linearly inside the
/// selected bucket, so its error is at most one bucket width.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds,
            std::string help = "");
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  uint64_t Count() const;
  double Sum() const;
  /// Per-bucket (non-cumulative) counts; last entry is the +inf bucket.
  std::vector<uint64_t> BucketCounts() const;
  const std::vector<double>& UpperBounds() const { return bounds_; }

  /// Bucket-interpolated quantile, q in [0, 1]. Returns 0 when empty.
  /// A quantile landing in the +inf overflow bucket reports +infinity —
  /// "at least the last finite bound" — rather than a fabricated value
  /// interpolated inside the final bucket (exporters render it as `+Inf`
  /// in Prometheus text and `null` in JSON).
  double Percentile(double q) const;

  void Reset();

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

  /// `count` ascending bounds: start, start*factor, start*factor^2, ...
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               size_t count);
  /// Default micros buckets for query latencies: 1us .. ~1s, doubling.
  static std::vector<double> LatencyBoundsMicros() {
    return ExponentialBounds(1.0, 2.0, 21);
  }

  /// Wider micros buckets for background work (re-freezes, flushes):
  /// 1us .. ~17min, quadrupling.
  static std::vector<double> DurationBoundsMicros() {
    return ExponentialBounds(1.0, 4.0, 16);
  }

 private:
  struct alignas(64) Cell {
    explicit Cell(size_t buckets) : counts(buckets) {}
    std::vector<std::atomic<uint64_t>> counts;  // bounds + 1 (inf).
    std::atomic<double> sum{0.0};
  };

  std::string name_;
  std::string help_;
  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Cell>> cells_;
};

/// Interpolated quantile over one set of per-bucket (non-cumulative)
/// counts — the math behind Histogram::Percentile, exposed so windowed
/// consumers (obs::TimeSeriesCollector) can run it on bucket DELTAS.
/// `counts` has bounds.size() + 1 entries (last = overflow). Returns 0 on
/// an empty window and +infinity when the quantile lands in the overflow
/// bucket.
double PercentileFromBucketCounts(const std::vector<double>& bounds,
                                  const std::vector<uint64_t>& counts,
                                  double q);

/// Named metric registry. One process-wide instance (Global()) serves the
/// library; tests construct private registries for isolation. Get* returns
/// the existing metric when the name is already registered (the kind must
/// match — a name registered as a counter stays a counter) and never
/// invalidates previously returned pointers. Re-registering a name with
/// DIFFERENT non-empty help text keeps the first string but logs a
/// one-time WARN naming both, so conflicting help is loud instead of
/// silently dropped.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");
  /// Labeled gauge: one series of the family `name` with the fixed,
  /// pre-escaped label pairs `labels` (e.g. `slo="query_p95"`). The
  /// registry key is `name{labels}`, so distinct label sets coexist and
  /// sort adjacently in the export.
  Gauge& GetGaugeWithLabels(const std::string& name,
                            const std::string& labels,
                            const std::string& help = "");
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds,
                          const std::string& help = "");

  /// Registered metrics in name order (the export order).
  std::vector<const Counter*> Counters() const;
  std::vector<const Gauge*> Gauges() const;
  std::vector<const Histogram*> Histograms() const;

  /// Zeroes every registered metric (names stay registered).
  void ResetAll();

 private:
  /// Logs the one-time WARN when `name` is re-registered with different
  /// non-empty help text. Caller holds mutex_.
  void WarnOnHelpConflict(const std::string& name,
                          const std::string& existing_help,
                          const std::string& new_help);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::set<std::string> help_conflicts_warned_;
};

}  // namespace innet::obs

#endif  // INNET_OBS_METRICS_H_
