// Embedded telemetry HTTP endpoint (docs/OBSERVABILITY.md §Live telemetry
// & SLOs).
//
// A dependency-free HTTP/1.1 server on a dedicated thread: one blocking
// accept loop, one request per connection, Connection: close. This is an
// operator plane, not a data plane — scrape cadence is seconds, so serial
// handling is deliberate (no thread pool to reason about, nothing shared
// with the query path beyond the lock-free metric reads). Binds
// 127.0.0.1 by default; port 0 picks an ephemeral port (Port() reports
// it).
//
// Endpoints:
//   GET /metrics  Prometheus text — byte-identical to WritePrometheus()
//                 of the same registry snapshot.
//   GET /healthz  Liveness: 200 "ok" while the process serves.
//   GET /readyz   Readiness: 200 only when every registered probe passes;
//                 503 lists the failing probes one per line.
//   GET /varz     JSON snapshot: build info, uptime, counters, gauges,
//                 histogram summaries, windowed rates, burning SLOs,
//                 digest-table and slow-log summaries.
//   GET /traces   Recent sampled query traces as JSON lines.
//                 ?limit=N caps the response to the N most recent traces;
//                 ?format=chrome renders the Chrome trace-event array
//                 instead. Malformed values get 400.
//   GET /queryz   Query digest table (docs/OBSERVABILITY.md §9): top-K
//                 digests by total time with per-digest p50/p95 and cost
//                 counters. ?limit=N picks K (default 20); ?slow=1
//                 returns the most recent slow-query records instead.
#ifndef INNET_OBS_TELEMETRY_SERVER_H_
#define INNET_OBS_TELEMETRY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace innet::obs {

class QueryDigestTable;
class SloEngine;
class SlowQueryLog;
class TimeSeriesCollector;
class Tracer;

struct TelemetryServerOptions {
  /// 0 binds an ephemeral port; read it back via Port().
  uint16_t port = 0;
  /// Loopback by default: telemetry is an operator plane, exposing it
  /// beyond the host is an explicit decision.
  std::string bind_address = "127.0.0.1";
};

/// Serves the registry (and optional collector/SLO/tracer views) over
/// HTTP. Construction does not open sockets; Start() does.
class TelemetryServer {
 public:
  TelemetryServer(MetricsRegistry& registry,
                  const TelemetryServerOptions& options);
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Optional views; attach before Start(). Null detaches.
  void AttachCollector(TimeSeriesCollector* collector) {
    collector_ = collector;
  }
  void AttachSloEngine(SloEngine* slo) { slo_ = slo; }
  void AttachTracer(Tracer* tracer) { tracer_ = tracer; }
  void AttachDigestTable(QueryDigestTable* digest) { digest_ = digest; }
  void AttachSlowLog(SlowQueryLog* slowlog) { slowlog_ = slowlog; }

  /// Registers a /readyz probe. Probes run on the serving thread per
  /// request; keep them cheap (metric reads, atomic loads).
  void AddReadinessProbe(const std::string& name,
                         std::function<bool()> probe);

  /// Binds, listens, and starts the accept thread. Returns false (and
  /// logs ERROR) when the socket cannot be bound.
  bool Start();

  /// Stops the accept loop and joins the thread. Idempotent; also run by
  /// the destructor.
  void Stop();

  /// The bound port; 0 before a successful Start().
  uint16_t Port() const { return port_.load(std::memory_order_acquire); }

  uint64_t RequestsServed() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Parses one HTTP request and returns the full response bytes
  /// (status line, headers, body). Public so conformance tests can
  /// exercise routing and malformed-request handling without sockets.
  std::string HandleRequest(const std::string& request);

 private:
  std::string MetricsBody();
  std::string VarzBody();
  /// Full /traces response (status line included): honors ?limit=N and
  /// ?format=chrome, 400 on malformed values.
  std::string TracesResponse(const std::string& query_string);
  /// Full /queryz response: digest-table JSON, or the slow-query ring
  /// under ?slow=1.
  std::string QueryzResponse(const std::string& query_string);
  std::string ReadyzResponse();
  void AcceptLoop();
  void ServeConnection(int fd);

  MetricsRegistry& registry_;
  TelemetryServerOptions options_;
  TimeSeriesCollector* collector_ = nullptr;
  SloEngine* slo_ = nullptr;
  Tracer* tracer_ = nullptr;
  QueryDigestTable* digest_ = nullptr;
  SlowQueryLog* slowlog_ = nullptr;

  std::mutex probes_mutex_;
  std::vector<std::pair<std::string, std::function<bool()>>> probes_;

  std::atomic<bool> running_{false};
  std::atomic<uint16_t> port_{0};
  std::atomic<uint64_t> requests_served_{0};
  int listen_fd_ = -1;
  std::thread thread_;
};

}  // namespace innet::obs

#endif  // INNET_OBS_TELEMETRY_SERVER_H_
