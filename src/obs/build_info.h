// Build identity and process uptime as metrics (docs/OBSERVABILITY.md).
//
// `innet_build_info` is the conventional Prometheus info-style gauge: a
// constant 1 whose labels carry version / git sha / compiler, so dashboards
// can join any other series against the build that produced it.
// `innet_uptime_seconds` is set by whoever drives the registry (the
// telemetry collector tick, or once before a file export) — it is NOT
// auto-updated on read, which keeps scrape-vs-export byte equality
// deterministic in tests.
#ifndef INNET_OBS_BUILD_INFO_H_
#define INNET_OBS_BUILD_INFO_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace innet::obs {

/// Semantic version of this library/binary.
const char* BuildVersion();

/// Short git sha the binary was configured from, or "unknown" outside a
/// git checkout.
const char* BuildGitSha();

/// Compiler id + version string (e.g. "gcc-13.2.0").
const char* BuildCompiler();

/// Active kernel dispatch level ("avx2" / "neon" / "scalar") — the level
/// the frozen-store read path is actually running at, after the
/// `INNET_SIMD` override and hardware detection (util/simd.h).
const char* BuildSimd();

/// Registers
/// `innet_build_info{version=...,git_sha=...,compiler=...,simd=...} 1`
/// and `innet_uptime_seconds` in `registry`; idempotent. Returns the
/// uptime gauge so callers can refresh it.
Gauge& RegisterBuildInfo(MetricsRegistry& registry);

/// Monotonic seconds since this process first called UptimeSeconds()
/// (anchored at static-init time in practice — the first call wins).
double UptimeSeconds();

}  // namespace innet::obs

#endif  // INNET_OBS_BUILD_INFO_H_
