// Per-query cost accounting (docs/OBSERVABILITY.md §9).
//
// A QueryCostProfile is the warm path's answer to "why did this query cost
// what it did": the structural work counters (faces resolved, boundary
// edges integrated, CSR timestamps merged, bucket-index probes) plus the
// classification axes the digest table groups by (query kind, bound,
// region-size decile, store kind, cache path) and per-stage nanoseconds.
//
// The struct is plain data — fixed-size integers and enums only, no
// strings, no heap — so filling one is a handful of stores and resetting
// one is a memset. Query paths accumulate it in place (the engine on its
// stack, the processors in QueryWorkspace::cost), keeping the
// zero-allocation warm-path contract intact with profiling enabled.
//
// Layering: obs sits below core, so this header names graph concepts only
// through small integers. core/runtime fill the fields; obs::QueryDigestTable
// and obs::SlowQueryLog consume them.
#ifndef INNET_OBS_QUERY_COST_H_
#define INNET_OBS_QUERY_COST_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace innet::obs {

/// How the query's boundary resolution was served. kDegraded wins over the
/// cache axes: a degraded answer is its own cost regime (rerouted
/// boundary, interval arithmetic) regardless of where the resolution came
/// from.
enum class QueryPathKind : uint8_t {
  kUncached = 0,   ///< No boundary cache in front (processor paths).
  kCacheMiss = 1,  ///< Engine resolved fresh and published to the cache.
  kCacheHit = 2,   ///< Engine reused a cached resolution.
  kDegraded = 3,   ///< Answered in degraded mode (docs/FAULTS.md).
};
inline constexpr size_t kQueryPathKinds = 4;

/// Names for rendering; index with static_cast<size_t>(path).
inline const char* QueryPathKindName(QueryPathKind path) {
  static const char* const kNames[kQueryPathKinds] = {
      "uncached", "cache_miss", "cache_hit", "degraded"};
  return kNames[static_cast<size_t>(path) % kQueryPathKinds];
}

/// Region-size decile of a query: region_cells * 10 / total_cells clamped
/// to [0, 9] (0 when the total is unknown). THE shared bucketing — both
/// AccuracyMonitor's `innet_accuracy_rel_error_decile_<d>` histograms and
/// the digest key call this, so /queryz deciles and the accuracy metrics
/// agree by construction.
inline size_t RegionSizeDecile(size_t region_cells, size_t total_cells) {
  if (total_cells == 0) return 0;
  size_t decile = region_cells * 10 / total_cells;
  return decile >= 10 ? 9 : decile;
}

/// Division-free RegionSizeDecile for a FIXED total: precomputes the nine
/// decile thresholds once, so the per-query cost is nine compares instead
/// of a 64-bit divide (which is ~5% of a warm cache-hit query by itself).
/// Decile(r) == RegionSizeDecile(r, total) for every r — the thresholds
/// are t_d = ceil(d*total/10), and r*10/total >= d iff r >= t_d.
class RegionDecileBuckets {
 public:
  /// Total 0 (unknown) pins every query to decile 0, like the function.
  RegionDecileBuckets() { thresholds_.fill(kNever); }
  explicit RegionDecileBuckets(size_t total_cells) {
    for (size_t d = 1; d <= thresholds_.size(); ++d) {
      thresholds_[d - 1] =
          total_cells == 0 ? kNever : (d * total_cells + 9) / 10;
    }
  }

  size_t Decile(size_t region_cells) const {
    size_t decile = 0;
    for (size_t threshold : thresholds_) {
      decile += region_cells >= threshold ? 1 : 0;
    }
    return decile;
  }

 private:
  static constexpr size_t kNever = std::numeric_limits<size_t>::max();
  std::array<size_t, 9> thresholds_;
};

/// Cost account of one answered query. Filled by SampledQueryProcessor /
/// UnsampledQueryProcessor (into QueryWorkspace::cost) and by
/// runtime::BatchQueryEngine (stack local) for every answered query.
struct QueryCostProfile {
  // --- Classification (the digest key axes). ---
  /// 0 = static count, 1 = transient count.
  uint8_t kind = 0;
  /// 0 = lower bound, 1 = upper bound, 2 = exact (unsampled path).
  uint8_t bound = 0;
  /// 0 = exact store (tracking form), 1 = modeled/learned store.
  uint8_t store_kind = 0;
  QueryPathKind path = QueryPathKind::kUncached;
  /// RegionSizeDecile(region_junctions, total deployment cells).
  uint8_t region_decile = 0;

  // --- Outcome flags (aggregated per digest, not key axes). ---
  bool missed = false;
  bool degraded = false;

  // --- Structural work counters. ---
  /// Sampled faces whose union covered the region (0 on the exact path).
  uint32_t faces_resolved = 0;
  /// Junction cells of the query region |Q_R|.
  uint64_t region_junctions = 0;
  /// Boundary edges the count integrated over.
  uint64_t boundary_edges = 0;
  /// Sensors owning the boundary (flooded sensors on the exact path).
  uint64_t boundary_sensors = 0;
  /// Stored CSR timestamps under the integrated boundary (both directions
  /// of every boundary edge). Frozen stores only; 0 on virtual stores.
  uint64_t csr_timestamps = 0;
  /// Bucket-index probes: boundary slots x evaluation instants. Frozen
  /// stores only.
  uint64_t bucket_probes = 0;
  /// Store generation the answer was served at (0 outside handle mode).
  uint64_t store_generation = 0;

  // --- Per-stage wall time, nanoseconds (span-equivalent timing without
  // requiring the query to be trace-sampled). resolve_nanos is charged 0
  // on an engine cache hit: resolution there is a hash probe, and skipping
  // its clock read keeps the warmest path cheap, so integrate == total for
  // hits. ---
  uint64_t resolve_nanos = 0;
  uint64_t integrate_nanos = 0;
  uint64_t total_nanos = 0;
};

}  // namespace innet::obs

#endif  // INNET_OBS_QUERY_COST_H_
