// Rolling short-history sampling of the MetricsRegistry
// (docs/OBSERVABILITY.md §Live telemetry & SLOs).
//
// Lifetime totals answer "how much, ever"; a live operator needs "how fast,
// lately". The TimeSeriesCollector samples every registered metric on a
// fixed period into per-metric rings of the last K samples: counters keep
// cumulative values (rates derive from deltas), gauges keep instantaneous
// values, histograms keep cumulative bucket counts + sum so WINDOWED
// quantiles derive from bucket deltas between ring slots — the same
// interpolation as Histogram::Percentile, restricted to recent
// observations.
//
// Sampling runs either on a background thread (Start/Stop) or manually via
// SampleNow(), which tests and single-threaded tools use for determinism.
// All reads lock the same mutex as sampling; the collector is not on any
// query hot path.
#ifndef INNET_OBS_TIMESERIES_H_
#define INNET_OBS_TIMESERIES_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <utility>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace innet::obs {

/// One ring slot of one metric's history.
struct TimeSeriesSample {
  /// Collector-relative steady seconds when the sample was taken.
  double at_seconds = 0.0;
  /// Counter value, gauge value, or histogram sum.
  double value = 0.0;
  /// Histogram only: cumulative per-bucket counts (bounds + overflow).
  std::vector<uint64_t> bucket_counts;
  /// Histogram only: cumulative observation count.
  uint64_t count = 0;
};

struct TimeSeriesOptions {
  /// Background sampling period.
  uint64_t period_ms = 250;
  /// Ring slots retained per metric.
  size_t window_slots = 64;
};

/// Samples a MetricsRegistry into fixed-size rolling rings.
class TimeSeriesCollector {
 public:
  TimeSeriesCollector(MetricsRegistry& registry,
                      const TimeSeriesOptions& options);
  ~TimeSeriesCollector();

  TimeSeriesCollector(const TimeSeriesCollector&) = delete;
  TimeSeriesCollector& operator=(const TimeSeriesCollector&) = delete;

  /// Starts the background sampling thread. Idempotent.
  void Start();
  /// Stops and joins the background thread. Idempotent; also run by the
  /// destructor.
  void Stop();

  /// Takes one sample of every registered metric right now (also refreshes
  /// derived gauges). The background thread calls this on its period;
  /// tests call it directly with hand-picked timestamps.
  void SampleNow();

  /// Registers a gauge whose value is recomputed from `fn(now_seconds)` at
  /// the START of every sample tick, before metrics are read — e.g.
  /// innet_uptime_seconds or refreeze staleness. The gauge lives in the
  /// underlying registry, so it exports everywhere gauges do.
  void AddDerivedGauge(const std::string& name, const std::string& help,
                       std::function<double(double)> fn);

  /// Runs after every completed sample tick with the tick's timestamp.
  /// The SloEngine hooks evaluation here so objectives are checked exactly
  /// once per sample. Listeners run without the ring lock held.
  void AddSampleListener(std::function<void(double)> listener);

  /// Ring of `name` (a counter/gauge name or a histogram base name),
  /// oldest first. Empty when the metric has never been sampled.
  std::vector<TimeSeriesSample> Series(const std::string& name) const;

  /// Per-second rate of counter `name` over the last `window_seconds`
  /// (delta between the newest sample and the oldest sample inside the
  /// window). 0 with fewer than two samples.
  double CounterRate(const std::string& name, double window_seconds) const;

  /// Newest sampled value of gauge or counter `name`; 0 if never sampled.
  double Last(const std::string& name) const;

  /// Maximum sampled value of `name` inside the window.
  double WindowedMax(const std::string& name, double window_seconds) const;

  /// Observations histogram `name` absorbed during the window (count
  /// delta).
  uint64_t WindowedCount(const std::string& name,
                         double window_seconds) const;

  /// Quantile of histogram `name` over only the observations inside the
  /// last `window_seconds` (bucket-count deltas between the window's edge
  /// samples). Returns 0 on an empty window, +inf when the quantile lands
  /// in the overflow bucket — same contract as Histogram::Percentile.
  double WindowedQuantile(const std::string& name, double window_seconds,
                          double q) const;

  /// Newest-sample rates of every sampled counter over `window_seconds`,
  /// name-ordered; feeds /varz.
  std::vector<std::pair<std::string, double>> AllCounterRates(
      double window_seconds) const;

  /// Seconds since the collector was constructed (the sampling clock).
  double NowSeconds() const;

  uint64_t SamplesTaken() const {
    return samples_taken_.load(std::memory_order_relaxed);
  }

  const TimeSeriesOptions& options() const { return options_; }

 private:
  struct Ring {
    std::vector<TimeSeriesSample> slots;  // oldest first
    std::vector<double> bounds;           // histograms only
  };

  void SampleAt(double now_seconds);
  /// Edge samples of the window: newest, and oldest still inside it.
  /// Returns false with fewer than two samples.
  bool WindowEdges(const Ring& ring, double window_seconds,
                   const TimeSeriesSample** oldest,
                   const TimeSeriesSample** newest) const;
  void RunLoop();

  MetricsRegistry& registry_;
  TimeSeriesOptions options_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mutex_;
  std::map<std::string, Ring> rings_;
  std::vector<std::pair<Gauge*, std::function<double(double)>>> derived_;
  std::vector<std::function<void(double)>> listeners_;

  std::atomic<uint64_t> samples_taken_{0};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace innet::obs

#endif  // INNET_OBS_TIMESERIES_H_
