#include "obs/slowlog.h"

#include <chrono>

#include "obs/export.h"
#include "obs/query_digest.h"
#include "util/logging.h"

namespace innet::obs {

namespace {

MetricsRegistry& Resolve(MetricsRegistry* registry) {
  return registry != nullptr ? *registry : MetricsRegistry::Global();
}

}  // namespace

SlowQueryLog::SlowQueryLog(const SlowQueryLogOptions& options)
    : options_(options),
      threshold_nanos_(
          static_cast<uint64_t>(options.threshold_micros * 1000.0)),
      records_(&Resolve(options.registry)
                    .GetCounter("innet_slowlog_records_total",
                                "Slow-query records emitted")),
      suppressed_(&Resolve(options.registry)
                       .GetCounter("innet_slowlog_suppressed_total",
                                   "Slow queries over the rate limit "
                                   "(record suppressed)")),
      tokens_(static_cast<double>(options.burst)) {
  INNET_CHECK(options_.threshold_micros > 0.0);
  INNET_CHECK(options_.max_records_per_sec > 0.0);
  INNET_CHECK(options_.burst > 0);
  if (!options_.path.empty()) {
    file_.open(options_.path, std::ios::out | std::ios::app);
    if (!file_) {
      INNET_LOG(ERROR) << "slowlog: cannot open " << options_.path;
    }
  }
}

SlowQueryLog::~SlowQueryLog() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_.is_open()) file_.close();
}

bool SlowQueryLog::Admit() {
  std::lock_guard<std::mutex> lock(mutex_);
  double elapsed = refill_timer_.ElapsedSeconds();
  refill_timer_.Restart();
  tokens_ += elapsed * options_.max_records_per_sec;
  double cap = static_cast<double>(options_.burst);
  if (tokens_ > cap) tokens_ = cap;
  if (tokens_ < 1.0) {
    suppressed_->Increment();
    return false;
  }
  tokens_ -= 1.0;
  return true;
}

void SlowQueryLog::Record(const QueryCostProfile& profile,
                          const ExplainRecord& explain) {
  // Wall-clock stamp: a slow-query log is for correlating with external
  // timelines, so unix time (not process uptime) is the useful stamp.
  double ts_unix =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();

  std::string line = "{\"ts_unix\":";
  JsonAppendNumber(&line, ts_unix);
  line += ",\"total_micros\":";
  JsonAppendNumber(&line, static_cast<double>(profile.total_nanos) / 1000.0);
  line += ",\"resolve_micros\":";
  JsonAppendNumber(&line,
                   static_cast<double>(profile.resolve_nanos) / 1000.0);
  line += ",\"integrate_micros\":";
  JsonAppendNumber(&line,
                   static_cast<double>(profile.integrate_nanos) / 1000.0);
  line += ",\"digest\":{\"kind\":\"";
  line += DigestKindName(profile.kind);
  line += "\",\"bound\":\"";
  line += DigestBoundName(profile.bound);
  line += "\",\"decile\":";
  line += std::to_string(profile.region_decile);
  line += ",\"store\":\"";
  line += DigestStoreName(profile.store_kind);
  line += "\",\"path\":\"";
  line += QueryPathKindName(profile.path);
  line += "\"},\"cost\":{\"faces\":";
  line += std::to_string(profile.faces_resolved);
  line += ",\"region_junctions\":";
  line += std::to_string(profile.region_junctions);
  line += ",\"boundary_edges\":";
  line += std::to_string(profile.boundary_edges);
  line += ",\"boundary_sensors\":";
  line += std::to_string(profile.boundary_sensors);
  line += ",\"csr_timestamps\":";
  line += std::to_string(profile.csr_timestamps);
  line += ",\"bucket_probes\":";
  line += std::to_string(profile.bucket_probes);
  line += ",\"store_generation\":";
  line += std::to_string(profile.store_generation);
  line += "},\"explain\":";
  line += explain.ToJson();
  line += "}";

  records_->Increment();
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(line);
  while (ring_.size() > options_.keep_last) ring_.pop_front();
  if (file_.is_open()) {
    file_ << line << "\n";
    file_.flush();
  }
}

std::vector<std::string> SlowQueryLog::RecentRecords() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<std::string>(ring_.begin(), ring_.end());
}

}  // namespace innet::obs
