#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "obs/build_info.h"

namespace innet::obs {

namespace {

// Everything below runs inside signal handlers: no malloc, no stdio, no
// locks — only writes into a caller-provided bounded buffer.

int64_t MonotonicMicros() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

struct Buffer {
  char* data;
  size_t capacity;
  size_t size = 0;

  void Append(const char* text) {
    while (*text != '\0' && size < capacity) data[size++] = *text++;
  }

  // JSON string payload: drops quotes/backslashes/control chars instead of
  // escaping — record fields are pre-sanitized, this guards `reason`.
  void AppendJsonText(const char* text) {
    for (; *text != '\0' && size < capacity; ++text) {
      unsigned char c = static_cast<unsigned char>(*text);
      if (c < 0x20 || c == '"' || c == '\\') continue;
      data[size++] = *text;
    }
  }

  void AppendU64(uint64_t value) {
    char digits[24];
    size_t n = 0;
    do {
      digits[n++] = static_cast<char>('0' + value % 10);
      value /= 10;
    } while (value != 0);
    while (n > 0 && size < capacity) data[size++] = digits[--n];
  }

  void AppendI64(int64_t value) {
    if (value < 0) {
      Append("-");
      AppendU64(static_cast<uint64_t>(-value));
    } else {
      AppendU64(static_cast<uint64_t>(value));
    }
  }

  // Fixed-point with 6 decimals; non-finite renders as null, huge values
  // clamp so the integer part always fits u64 formatting.
  void AppendDouble(double value) {
    if (value != value || value > 1e15 || value < -1e15) {
      if (value > 1e15) {
        Append("1e15");
        return;
      }
      if (value < -1e15) {
        Append("-1e15");
        return;
      }
      Append("null");
      return;
    }
    if (value < 0) {
      Append("-");
      value = -value;
    }
    uint64_t whole = static_cast<uint64_t>(value);
    uint64_t frac =
        static_cast<uint64_t>((value - static_cast<double>(whole)) * 1e6 +
                              0.5);
    if (frac >= 1000000) {
      ++whole;
      frac = 0;
    }
    AppendU64(whole);
    if (frac != 0) {
      char digits[8];
      for (size_t i = 6; i > 0; --i) {
        digits[i - 1] = static_cast<char>('0' + frac % 10);
        frac /= 10;
      }
      size_t end = 6;
      while (end > 0 && digits[end - 1] == '0') --end;
      digits[end] = '\0';
      Append(".");
      Append(digits);
    }
  }
};

// One static dump buffer; the guard keeps a second crashing thread from
// scribbling into a dump already in progress.
char g_dump_buffer[64 * 1024];
std::atomic<bool> g_dumping{false};

void CopySanitized(char* dst, size_t dst_size, const char* src) {
  size_t n = 0;
  for (; src[n] != '\0' && n + 1 < dst_size; ++n) {
    char c = src[n];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == ':' ||
              c == '-';
    dst[n] = ok ? c : '_';
  }
  dst[n] = '\0';
}

void HandleFatalSignal(int sig) {
  const char* reason = sig == SIGSEGV   ? "SIGSEGV"
                       : sig == SIGABRT ? "SIGABRT"
                       : sig == SIGTERM ? "SIGTERM"
                                        : "signal";
  FlightRecorder::Global().DumpNow(reason);
  if (sig == SIGTERM) _exit(143);
  // Restore the default action and re-raise so the exit status and core
  // behavior stay what the operator expects.
  signal(sig, SIG_DFL);
  raise(sig);
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* const kRecorder = new FlightRecorder();
  return *kRecorder;
}

void FlightRecorder::Configure(const std::string& dump_dir) {
  std::snprintf(path_prefix_, sizeof(path_prefix_), "%s/flight-%lld-",
                dump_dir.empty() ? "." : dump_dir.c_str(),
                static_cast<long long>(getpid()));
  epoch_micros_.store(MonotonicMicros(), std::memory_order_relaxed);
  configured_.store(true, std::memory_order_release);
}

void FlightRecorder::Note(const char* kind, const char* name, double value) {
  uint64_t claim = next_.fetch_add(1, std::memory_order_relaxed);
  Record& record = records_[claim % kRecords];
  // Invalidate the slot while its payload is torn; readers skip slots
  // whose seq does not match their position.
  record.seq.store(0, std::memory_order_release);
  record.micros = MonotonicMicros() -
                  epoch_micros_.load(std::memory_order_relaxed);
  CopySanitized(record.kind, sizeof(record.kind), kind);
  CopySanitized(record.name, sizeof(record.name), name);
  record.value = value;
  record.seq.store(claim + 1, std::memory_order_release);
}

bool FlightRecorder::DumpNow(const char* reason) {
  if (!configured_.load(std::memory_order_acquire)) return false;
  bool expected = false;
  if (!g_dumping.compare_exchange_strong(expected, true)) return false;

  Buffer buffer{g_dump_buffer, sizeof(g_dump_buffer) - 1};
  buffer.Append("{\"schema\":\"innet-flight-v1\",\"pid\":");
  buffer.AppendI64(getpid());
  buffer.Append(",\"reason\":\"");
  buffer.AppendJsonText(reason);
  buffer.Append("\",\"build\":{\"version\":\"");
  buffer.AppendJsonText(BuildVersion());
  buffer.Append("\",\"git_sha\":\"");
  buffer.AppendJsonText(BuildGitSha());
  buffer.Append("\",\"compiler\":\"");
  buffer.AppendJsonText(BuildCompiler());
  buffer.Append("\"},\"records\":[");

  uint64_t next = next_.load(std::memory_order_acquire);
  uint64_t start = next > kRecords ? next - kRecords : 0;
  bool first = true;
  for (uint64_t seq = start; seq < next; ++seq) {
    const Record& record = records_[seq % kRecords];
    if (record.seq.load(std::memory_order_acquire) != seq + 1) continue;
    if (!first) buffer.Append(",");
    first = false;
    buffer.Append("{\"seq\":");
    buffer.AppendU64(seq);
    buffer.Append(",\"micros\":");
    buffer.AppendI64(record.micros);
    buffer.Append(",\"kind\":\"");
    buffer.AppendJsonText(record.kind);
    buffer.Append("\",\"name\":\"");
    buffer.AppendJsonText(record.name);
    buffer.Append("\",\"value\":");
    buffer.AppendDouble(record.value);
    buffer.Append("}");
  }
  buffer.Append("]}\n");

  char path[256];
  size_t prefix = std::strlen(path_prefix_);
  std::memcpy(path, path_prefix_, prefix);
  Buffer name{path + prefix, sizeof(path) - prefix - 1};
  name.AppendU64(dump_seq_.fetch_add(1, std::memory_order_relaxed));
  name.Append(".json");
  path[prefix + name.size] = '\0';

  int fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  bool ok = fd >= 0;
  if (ok) {
    size_t written = 0;
    while (written < buffer.size) {
      ssize_t n = write(fd, buffer.data + written, buffer.size - written);
      if (n <= 0) {
        ok = false;
        break;
      }
      written += static_cast<size_t>(n);
    }
    close(fd);
  }
  g_dumping.store(false, std::memory_order_release);
  return ok;
}

void FlightRecorder::InstallSignalHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleFatalSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGSEGV, &action, nullptr);
  sigaction(SIGABRT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

void FlightRecorder::CrashPointHook(const char* point) {
  FlightRecorder& recorder = Global();
  if (!recorder.Configured()) return;
  recorder.DumpNow(point);
}

}  // namespace innet::obs
