// Crash-time black box (docs/OBSERVABILITY.md §Live telemetry & SLOs).
//
// A preallocated ring of the most recent notable events — store
// generations published, WAL errors, batch completions, SLO transitions —
// recorded with a lock-free fetch_add slot claim so Note() is cheap enough
// for steady-state paths. On SIGSEGV/SIGABRT/SIGTERM (InstallSignalHandlers)
// or an armed crash point firing (CrashPointHook, wired into
// faults::CrashPointRegistry by the binary), the ring is dumped as
// `flight-<pid>-<seq>.json` using ONLY async-signal-safe primitives:
// open/write/close on pre-rendered or hand-formatted buffers — no malloc,
// no stdio, no locks.
//
// Dump schema (schema id "innet-flight-v1"):
//   {"schema":"innet-flight-v1","pid":123,"reason":"SIGSEGV",
//    "build":{"version":"...","git_sha":"...","compiler":"..."},
//    "records":[{"seq":0,"micros":12345,"kind":"store",
//                "name":"publish_generation","value":3},...]}
// Records are oldest-first; `micros` is steady time since recorder
// configuration.
#ifndef INNET_OBS_FLIGHT_RECORDER_H_
#define INNET_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace innet::obs {

/// Process-wide crash-time event ring. All methods are thread-safe;
/// Note() is lock-free and DumpNow() is async-signal-safe once
/// Configure() has run.
class FlightRecorder {
 public:
  static constexpr size_t kRecords = 256;

  static FlightRecorder& Global();

  /// Sets the dump directory (default ".") and marks the recorder armed.
  /// NOT async-signal-safe; call once at startup before installing
  /// handlers.
  void Configure(const std::string& dump_dir);

  /// True once Configure() has run.
  bool Configured() const {
    return configured_.load(std::memory_order_acquire);
  }

  /// Records one event. `kind` and `name` are truncated to the record's
  /// fixed fields and sanitized to [A-Za-z0-9_.:-] so dumping needs no
  /// escaping. Lock-free; safe from any thread, cheap enough for
  /// per-epoch/per-batch call sites (one fetch_add + bounded copies).
  void Note(const char* kind, const char* name, double value);

  /// Writes the ring to `flight-<pid>-<seq>.json` in the configured
  /// directory using only async-signal-safe calls. `reason` must be a
  /// static string (signal name or crash-point id). Returns the fd-level
  /// success; on failure there is nothing safe left to do, so callers
  /// ignore it outside tests.
  bool DumpNow(const char* reason);

  /// Installs SIGSEGV/SIGABRT/SIGTERM handlers that DumpNow() and then
  /// re-raise (SEGV/ABRT) or _exit(143) (TERM). Call after Configure().
  void InstallSignalHandlers();

  /// Adapter for faults::CrashPointRegistry::SetPreCrashHook — dumps with
  /// the firing point as the reason. No-op until Configure() has run.
  static void CrashPointHook(const char* point);

  /// Records written so far (monotonic; may exceed kRecords).
  uint64_t NotesTaken() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  struct Record {
    std::atomic<uint64_t> seq{0};  // 1-based claim id; 0 = empty slot
    int64_t micros = 0;
    char kind[8] = {0};
    char name[40] = {0};
    double value = 0.0;
  };

  FlightRecorder() = default;

  Record records_[kRecords];
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> dump_seq_{0};
  std::atomic<bool> configured_{false};
  std::atomic<int64_t> epoch_micros_{0};
  // Pre-rendered "<dir>/flight-<pid>-" so the handler only appends digits.
  char path_prefix_[192] = {0};
};

}  // namespace innet::obs

#endif  // INNET_OBS_FLIGHT_RECORDER_H_
