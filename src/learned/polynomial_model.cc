#include "learned/polynomial_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace innet::learned {

PolynomialModel::PolynomialModel(int degree, double time_scale)
    : degree_(degree), time_scale_(time_scale) {
  INNET_CHECK(degree_ >= 1 && degree_ <= kMaxDegree);
  INNET_CHECK(time_scale_ > 0.0);
}

void PolynomialModel::DoObserve(double t, double y) {
  if (observed_ == 0) first_time_ = t;
  double x = t / time_scale_;
  double xk = 1.0;
  for (int k = 0; k <= 2 * degree_; ++k) {
    x_moments_[k] += xk;
    if (k <= degree_) xy_moments_[k] += xk * y;
    xk *= x;
  }
  // Eager refit keeps Predict a pure const read (thread safety of the
  // batch-query read path); the solve is O(degree^3) with degree <= 3.
  Refit();
}

void PolynomialModel::Refit() {
  // Solve the (degree+1)^2 normal equations A c = b with a small ridge term
  // for numerical robustness on near-degenerate inputs.
  int n = degree_ + 1;
  double a[kMaxDegree + 1][kMaxDegree + 2];
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) a[r][c] = x_moments_[r + c];
    a[r][r] += 1e-9 * (x_moments_[0] + 1.0);
    a[r][n] = xy_moments_[r];
  }
  // Gaussian elimination with partial pivoting.
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    for (int c = 0; c <= n; ++c) std::swap(a[col][c], a[pivot][c]);
    double diag = a[col][col];
    if (std::abs(diag) < 1e-30) diag = 1e-30;
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      double factor = a[r][col] / diag;
      for (int c = col; c <= n; ++c) a[r][c] -= factor * a[col][c];
    }
  }
  for (int r = 0; r < n; ++r) {
    double diag = a[r][r];
    coeffs_[r] = std::abs(diag) < 1e-30 ? 0.0 : a[r][n] / diag;
  }
}

double PolynomialModel::Predict(double t) const {
  if (observed_ == 0) return 0.0;
  if (observed_ == 1) {
    return t >= first_time_ ? 1.0 : 0.0;
  }
  double x = t / time_scale_;
  double value = 0.0;
  double xk = 1.0;
  for (int k = 0; k <= degree_; ++k) {
    value += coeffs_[k] * xk;
    xk *= x;
  }
  // The CDF is 0 before the first event; without this the extrapolated
  // polynomial can report phantom events far in the past.
  if (t < first_time_) value = 0.0;
  return std::clamp(value, 0.0, static_cast<double>(observed_));
}

size_t PolynomialModel::ParameterCount() const {
  // Coefficients + first_time + observed count.
  return static_cast<size_t>(degree_ + 1) + 2;
}

std::string_view PolynomialModel::Name() const {
  switch (degree_) {
    case 1:
      return "linear";
    case 2:
      return "quadratic";
    default:
      return "cubic";
  }
}

}  // namespace innet::learned
