// Piecewise (shrinking-cone) count models with a per-point error guarantee,
// in the spirit of streaming PLA learned indexes (FLIRT / PGM).
#ifndef INNET_LEARNED_PIECEWISE_MODEL_H_
#define INNET_LEARNED_PIECEWISE_MODEL_H_

#include <vector>

#include "learned/count_model.h"

namespace innet::learned {

/// Streaming piecewise-linear CDF model. A segment stays open while some
/// slope through its origin fits every observed point within +/- epsilon
/// (the "shrinking cone"); otherwise the segment is closed with the cone's
/// midpoint slope and a new one opens. Guarantees
/// |Predict(t_i) - i| <= epsilon at training points.
///
/// With `constant_segments` the slope is pinned to zero, which yields the
/// piecewise-constant ("decision tree style") regressor of Fig. 9.
class PiecewiseModel : public CountModel {
 public:
  PiecewiseModel(double epsilon, bool constant_segments);

  double Predict(double t) const override;
  size_t ParameterCount() const override;
  std::string_view Name() const override;

  /// Number of closed + open segments (storage grows with this).
  size_t SegmentCount() const;

 protected:
  void DoObserve(double t, double y) override;

 private:
  struct Segment {
    double t0;
    double y0;
    double slope;
  };

  void CloseOpenSegment();

  double epsilon_;
  bool constant_segments_;
  std::vector<Segment> segments_;

  bool open_ = false;
  double open_t0_ = 0.0;
  double open_y0_ = 0.0;
  double cone_lo_ = 0.0;
  double cone_hi_ = 0.0;
  double open_last_t_ = 0.0;
  double open_last_y_ = 0.0;
};

}  // namespace innet::learned

#endif  // INNET_LEARNED_PIECEWISE_MODEL_H_
