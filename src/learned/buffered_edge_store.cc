#include "learned/buffered_edge_store.h"

#include <algorithm>

#include "util/logging.h"

namespace innet::learned {

BufferedEdgeStore::BufferedEdgeStore(size_t num_edges, ModelType type,
                                     size_t buffer_capacity,
                                     const ModelOptions& options)
    : type_(type),
      buffer_capacity_(std::max<size_t>(1, buffer_capacity)),
      options_(options),
      states_(num_edges * 2) {}

void BufferedEdgeStore::RecordTraversal(graph::EdgeId road, bool forward,
                                        double t) {
  DirectionState& state = State(road, forward);
  INNET_DCHECK(state.buffer.empty() || state.buffer.back() <= t);
  state.buffer.push_back(t);
  ++total_events_;
  if (state.buffer.size() >= buffer_capacity_) {
    if (state.model == nullptr) {
      state.model = CreateCountModel(type_, options_);
    }
    for (double event : state.buffer) state.model->Observe(event);
    state.buffer.clear();
  }
}

const CountModel* BufferedEdgeStore::ModelFor(graph::EdgeId road,
                                              bool forward) const {
  return State(road, forward).model.get();
}

size_t BufferedEdgeStore::BufferedEvents() const {
  size_t buffered = 0;
  for (const DirectionState& state : states_) buffered += state.buffer.size();
  return buffered;
}

double BufferedEdgeStore::CountUpTo(graph::EdgeId road, bool forward,
                                    double t) const {
  const DirectionState& state = State(road, forward);
  double modeled =
      state.model != nullptr ? state.model->Predict(t) : 0.0;
  auto it =
      std::upper_bound(state.buffer.begin(), state.buffer.end(), t);
  double buffered = static_cast<double>(it - state.buffer.begin());
  return modeled + buffered;
}

size_t BufferedEdgeStore::DirectionBytes(const DirectionState& state) const {
  size_t bytes = state.buffer.size() * sizeof(double);
  if (state.model != nullptr) {
    bytes += state.model->ParameterCount() * sizeof(double);
  }
  return bytes;
}

size_t BufferedEdgeStore::StorageBytes() const {
  size_t total = 0;
  for (const DirectionState& state : states_) total += DirectionBytes(state);
  return total;
}

size_t BufferedEdgeStore::StorageBytesForEdge(graph::EdgeId road) const {
  return DirectionBytes(State(road, true)) +
         DirectionBytes(State(road, false));
}

}  // namespace innet::learned
