// Rolling-time-frame learned store, after FLIRT (Yang et al., EDBT 2023) —
// the §4.8 future-work design: instead of one model over the whole history,
// each directed edge keeps a bounded QUEUE of per-time-window models. Old
// windows are evicted (their exact contents forgotten, only their total
// count retained), bounding worst-case storage while keeping full fidelity
// over the recent retention horizon — the regime rolling analytics queries
// (e.g., "last 7 days") live in.
#ifndef INNET_LEARNED_ROLLING_STORE_H_
#define INNET_LEARNED_ROLLING_STORE_H_

#include <deque>
#include <memory>
#include <vector>

#include "forms/edge_count_store.h"
#include "learned/count_model.h"

namespace innet::learned {

/// Rolling-window options.
struct RollingOptions {
  /// Width of one time window in seconds.
  double window_seconds = 600.0;

  /// Number of most recent windows retained with full (modeled) fidelity.
  /// Older windows collapse to a single evicted-total counter.
  size_t retained_windows = 12;

  /// Model family per window.
  ModelType model_type = ModelType::kPiecewiseLinear;
  ModelOptions model;
};

/// EdgeCountStore with per-window models and eviction. CountUpTo is a pure
/// const read, so a quiesced store is read-safe across threads;
/// RecordTraversal needs external synchronization.
class RollingWindowStore : public forms::EdgeCountStore {
 public:
  RollingWindowStore(size_t num_edges, const RollingOptions& options);

  /// Ingests a crossing event; times must be non-decreasing per direction.
  void RecordTraversal(graph::EdgeId road, bool forward, double t);

  /// Earliest time still covered with modeled fidelity for this direction
  /// (0 when nothing was evicted yet).
  double RetentionStart(graph::EdgeId road, bool forward) const;

  /// Number of live windows for a direction.
  size_t WindowCount(graph::EdgeId road, bool forward) const;

  // EdgeCountStore. Lookups before the retention horizon lower-bound the
  // true count (evicted windows contribute their full totals only at or
  // after their end).
  double CountUpTo(graph::EdgeId road, bool forward, double t) const override;
  size_t StorageBytes() const override;
  size_t StorageBytesForEdge(graph::EdgeId road) const override;

 private:
  struct Window {
    double start = 0.0;
    std::unique_ptr<CountModel> model;
  };
  struct DirectionState {
    std::deque<Window> windows;
    double evicted_total = 0.0;   // Events in evicted windows.
    double evicted_until = 0.0;   // End time of the newest evicted window.
  };

  DirectionState& State(graph::EdgeId road, bool forward) {
    return states_[(static_cast<size_t>(road) << 1) | (forward ? 0 : 1)];
  }
  const DirectionState& State(graph::EdgeId road, bool forward) const {
    return states_[(static_cast<size_t>(road) << 1) | (forward ? 0 : 1)];
  }
  size_t DirectionBytes(const DirectionState& state) const;

  RollingOptions options_;
  std::vector<DirectionState> states_;
};

}  // namespace innet::learned

#endif  // INNET_LEARNED_ROLLING_STORE_H_
