#include "learned/rolling_store.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace innet::learned {

RollingWindowStore::RollingWindowStore(size_t num_edges,
                                       const RollingOptions& options)
    : options_(options), states_(num_edges * 2) {
  INNET_CHECK(options_.window_seconds > 0.0);
  INNET_CHECK(options_.retained_windows >= 1);
}

void RollingWindowStore::RecordTraversal(graph::EdgeId road, bool forward,
                                         double t) {
  DirectionState& state = State(road, forward);
  double window_start =
      std::floor(t / options_.window_seconds) * options_.window_seconds;
  if (state.windows.empty() || state.windows.back().start < window_start) {
    Window fresh;
    fresh.start = window_start;
    fresh.model = CreateCountModel(options_.model_type, options_.model);
    state.windows.push_back(std::move(fresh));
    while (state.windows.size() > options_.retained_windows) {
      const Window& oldest = state.windows.front();
      state.evicted_total +=
          static_cast<double>(oldest.model->ObservedCount());
      state.evicted_until = oldest.start + options_.window_seconds;
      state.windows.pop_front();
    }
  }
  INNET_DCHECK(t >= state.windows.back().start);
  state.windows.back().model->Observe(t);
}

double RollingWindowStore::RetentionStart(graph::EdgeId road,
                                          bool forward) const {
  return State(road, forward).evicted_until;
}

size_t RollingWindowStore::WindowCount(graph::EdgeId road,
                                       bool forward) const {
  return State(road, forward).windows.size();
}

double RollingWindowStore::CountUpTo(graph::EdgeId road, bool forward,
                                     double t) const {
  const DirectionState& state = State(road, forward);
  double total = 0.0;
  // Evicted history: fully counted once t reaches its end; queries inside
  // the evicted span lower-bound the truth (fidelity was dropped there).
  if (t >= state.evicted_until) {
    total += state.evicted_total;
  }
  for (const Window& window : state.windows) {
    if (t < window.start) break;
    total += window.model->Predict(t);
  }
  return total;
}

size_t RollingWindowStore::DirectionBytes(const DirectionState& state) const {
  size_t bytes = 2 * sizeof(double);  // Evicted total + horizon.
  for (const Window& window : state.windows) {
    bytes += sizeof(double) + window.model->ParameterCount() * sizeof(double);
  }
  return bytes;
}

size_t RollingWindowStore::StorageBytes() const {
  size_t total = 0;
  for (const DirectionState& state : states_) total += DirectionBytes(state);
  return total;
}

size_t RollingWindowStore::StorageBytesForEdge(graph::EdgeId road) const {
  return DirectionBytes(State(road, true)) +
         DirectionBytes(State(road, false));
}

}  // namespace innet::learned
