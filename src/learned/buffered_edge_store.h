// Learned per-edge event store: a constant-size regression model per
// directed edge plus a bounded buffer of recent events (§4.8).
//
// New crossing events accumulate in a small buffer; when the buffer fills,
// its events are folded into the model's incremental statistics and the
// buffer is cleared. Lookups combine the model estimate (flushed history)
// with an exact count over the buffer, so recent events are always exact and
// the error is confined to the modeled past — mirroring the paper's
// model-plus-buffer design.
#ifndef INNET_LEARNED_BUFFERED_EDGE_STORE_H_
#define INNET_LEARNED_BUFFERED_EDGE_STORE_H_

#include <memory>
#include <vector>

#include "forms/edge_count_store.h"
#include "learned/count_model.h"

namespace innet::learned {

/// EdgeCountStore backed by regression models. CountUpTo is a pure const
/// read (model predictions never mutate state), so a fully ingested store
/// is read-safe across threads; RecordTraversal needs external
/// synchronization.
class BufferedEdgeStore : public forms::EdgeCountStore {
 public:
  /// `buffer_capacity` is the event count n after which a direction's buffer
  /// is flushed into its model.
  BufferedEdgeStore(size_t num_edges, ModelType type, size_t buffer_capacity,
                    const ModelOptions& options);

  /// Ingests a crossing event; same contract as TrackingForm (non-decreasing
  /// time per edge and direction).
  void RecordTraversal(graph::EdgeId road, bool forward, double t);

  /// Model backing a direction, or nullptr if no event was flushed yet.
  const CountModel* ModelFor(graph::EdgeId road, bool forward) const;

  /// Total events ingested.
  size_t TotalEvents() const { return total_events_; }

  /// Events currently held raw in direction buffers (not yet folded into a
  /// model); TotalEvents() - BufferedEvents() have been modeled.
  size_t BufferedEvents() const;

  // EdgeCountStore:
  forms::StoreProvenance Provenance() const override {
    size_t raw = BufferedEvents();
    return {"learned", total_events_ - raw, raw};
  }
  double CountUpTo(graph::EdgeId road, bool forward, double t) const override;
  size_t StorageBytes() const override;
  size_t StorageBytesForEdge(graph::EdgeId road) const override;

 private:
  struct DirectionState {
    std::unique_ptr<CountModel> model;  // Created on first flush.
    std::vector<double> buffer;         // Sorted (times non-decreasing).
  };

  DirectionState& State(graph::EdgeId road, bool forward) {
    return states_[(static_cast<size_t>(road) << 1) | (forward ? 0 : 1)];
  }
  const DirectionState& State(graph::EdgeId road, bool forward) const {
    return states_[(static_cast<size_t>(road) << 1) | (forward ? 0 : 1)];
  }
  size_t DirectionBytes(const DirectionState& state) const;

  ModelType type_;
  size_t buffer_capacity_;
  ModelOptions options_;
  std::vector<DirectionState> states_;
  size_t total_events_ = 0;
};

}  // namespace innet::learned

#endif  // INNET_LEARNED_BUFFERED_EDGE_STORE_H_
