// Constant-size regression models for the per-edge count function C(γ, t)
// (§4.8, Fig. 9).
//
// Each model learns the CDF of the crossing-event timestamps on one directed
// edge as a stream: Observe(t) feeds the next (non-decreasing) event time,
// Predict(t) returns the estimated number of events with timestamp <= t in
// O(1) (O(log segments) for the piecewise models). Storage is a handful of
// parameters instead of the full timestamp sequence — the source of the
// paper's 99.96% storage reduction.
#ifndef INNET_LEARNED_COUNT_MODEL_H_
#define INNET_LEARNED_COUNT_MODEL_H_

#include <cstddef>
#include <memory>
#include <string_view>

namespace innet::learned {

/// Available regressor families (the "popular regressors" of Fig. 9).
enum class ModelType {
  kLinear,
  kQuadratic,
  kCubic,
  kPiecewiseLinear,
  kPiecewiseConstant,
};

/// Short lowercase name of a model type ("linear", ...).
std::string_view ModelTypeName(ModelType type);

/// Streaming monotone-CDF regressor.
class CountModel {
 public:
  virtual ~CountModel() = default;

  /// Feeds the next event timestamp. Timestamps must be non-decreasing.
  void Observe(double t) {
    DoObserve(t, static_cast<double>(observed_ + 1));
    ++observed_;
    last_time_ = t;
  }

  /// Estimated number of events with timestamp <= t, clamped to
  /// [0, ObservedCount()].
  virtual double Predict(double t) const = 0;

  /// Number of stored model parameters (the storage footprint in doubles).
  virtual size_t ParameterCount() const = 0;

  /// Events observed so far.
  size_t ObservedCount() const { return observed_; }

  virtual std::string_view Name() const = 0;

 protected:
  /// Implementation hook: event at time t brings the cumulative count to y.
  virtual void DoObserve(double t, double y) = 0;

  double last_time_ = 0.0;
  size_t observed_ = 0;
};

/// Model tuning shared by the factory.
struct ModelOptions {
  /// Time normalization scale (e.g., the experiment horizon); keeps the
  /// polynomial normal equations well conditioned.
  double time_scale = 1.0;

  /// Error tolerance (in counts) for the piecewise models; each segment
  /// guarantees |prediction - true count| <= epsilon at its training points.
  double epsilon = 8.0;
};

/// Creates a fresh model of the given family.
std::unique_ptr<CountModel> CreateCountModel(ModelType type,
                                             const ModelOptions& options);

}  // namespace innet::learned

#endif  // INNET_LEARNED_COUNT_MODEL_H_
