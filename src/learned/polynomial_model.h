// Polynomial least-squares count models (degree 1..3) with O(1) incremental
// updates via running moments.
#ifndef INNET_LEARNED_POLYNOMIAL_MODEL_H_
#define INNET_LEARNED_POLYNOMIAL_MODEL_H_

#include <array>

#include "learned/count_model.h"

namespace innet::learned {

/// Least-squares polynomial fit of the event CDF. The normal equations are
/// maintained incrementally (moments of the normalized time), so memory is
/// O(degree) regardless of how many events stream in.
///
/// Coefficients are refit eagerly on every Observe (a <= 4x4 solve, cheap
/// next to the moment update), so Predict is a pure const read — safe to
/// call concurrently from any number of threads once ingestion stops.
class PolynomialModel : public CountModel {
 public:
  static constexpr int kMaxDegree = 3;

  /// degree in [1, 3]; time_scale > 0 normalizes timestamps.
  PolynomialModel(int degree, double time_scale);

  double Predict(double t) const override;
  size_t ParameterCount() const override;
  std::string_view Name() const override;

 protected:
  void DoObserve(double t, double y) override;

 private:
  void Refit();

  int degree_;
  double time_scale_;
  // Moments: sum of x^k for k = 0..2*degree, and sum of x^k * y for
  // k = 0..degree, where x = t / time_scale.
  std::array<double, 2 * kMaxDegree + 1> x_moments_{};
  std::array<double, kMaxDegree + 1> xy_moments_{};
  double first_time_ = 0.0;
  std::array<double, kMaxDegree + 1> coeffs_{};
};

}  // namespace innet::learned

#endif  // INNET_LEARNED_POLYNOMIAL_MODEL_H_
