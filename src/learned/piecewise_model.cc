#include "learned/piecewise_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace innet::learned {

namespace {
constexpr double kUnbounded = 1e300;
}  // namespace

PiecewiseModel::PiecewiseModel(double epsilon, bool constant_segments)
    : epsilon_(epsilon), constant_segments_(constant_segments) {
  INNET_CHECK(epsilon_ >= 0.0);
}

void PiecewiseModel::CloseOpenSegment() {
  if (!open_) return;
  Segment seg;
  seg.t0 = open_t0_;
  seg.y0 = open_y0_;
  if (constant_segments_) {
    seg.slope = 0.0;
  } else if (cone_hi_ >= kUnbounded || cone_lo_ <= -kUnbounded) {
    // Cone never constrained (single point or vertical run): interpolate
    // through the last observed point if possible.
    double dt = open_last_t_ - open_t0_;
    seg.slope = dt > 0.0 ? (open_last_y_ - open_y0_) / dt : 0.0;
  } else {
    seg.slope = 0.5 * (cone_lo_ + cone_hi_);
  }
  segments_.push_back(seg);
  open_ = false;
}

void PiecewiseModel::DoObserve(double t, double y) {
  if (!open_) {
    open_ = true;
    open_t0_ = t;
    open_y0_ = y;
    cone_lo_ = -kUnbounded;
    cone_hi_ = kUnbounded;
    open_last_t_ = t;
    open_last_y_ = y;
    return;
  }
  double dt = t - open_t0_;
  if (dt <= 0.0) {
    // Vertical run of identical timestamps: representable while the jump
    // stays within epsilon.
    if (std::abs(y - open_y0_) <= epsilon_) {
      open_last_t_ = t;
      open_last_y_ = y;
      return;
    }
    CloseOpenSegment();
    DoObserve(t, y);
    return;
  }
  double lo = (y - epsilon_ - open_y0_) / dt;
  double hi = (y + epsilon_ - open_y0_) / dt;
  if (constant_segments_) {
    lo = std::max(lo, 0.0);
    hi = std::min(hi, 0.0);
    if (lo > hi || std::abs(y - open_y0_) > epsilon_) {
      CloseOpenSegment();
      DoObserve(t, y);
      return;
    }
    open_last_t_ = t;
    open_last_y_ = y;
    return;
  }
  double new_lo = std::max(cone_lo_, lo);
  double new_hi = std::min(cone_hi_, hi);
  if (new_lo > new_hi) {
    CloseOpenSegment();
    DoObserve(t, y);
    return;
  }
  cone_lo_ = new_lo;
  cone_hi_ = new_hi;
  open_last_t_ = t;
  open_last_y_ = y;
}

double PiecewiseModel::Predict(double t) const {
  if (observed_ == 0) return 0.0;

  // Effective open-segment parameters for prediction.
  auto open_slope = [this]() {
    if (constant_segments_) return 0.0;
    if (cone_hi_ >= kUnbounded || cone_lo_ <= -kUnbounded) {
      double dt = open_last_t_ - open_t0_;
      return dt > 0.0 ? (open_last_y_ - open_y0_) / dt : 0.0;
    }
    return 0.5 * (cone_lo_ + cone_hi_);
  };

  double first_t0 = !segments_.empty() ? segments_.front().t0 : open_t0_;
  if (t < first_t0) return 0.0;

  // Locate the governing segment: the last origin <= t.
  size_t idx = segments_.size();  // segments_.size() means the open segment.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](double value, const Segment& s) { return value < s.t0; });
  if (it != segments_.begin()) {
    idx = static_cast<size_t>(it - segments_.begin()) - 1;
    if (open_ && t >= open_t0_) idx = segments_.size();
  } else if (!open_ || t < open_t0_) {
    return 0.0;
  }

  double y;
  double upper;
  if (idx == segments_.size()) {
    INNET_DCHECK(open_);
    y = open_y0_ + open_slope() * (t - open_t0_);
    upper = static_cast<double>(observed_);
  } else {
    const Segment& s = segments_[idx];
    y = s.y0 + s.slope * (t - s.t0);
    // Do not overshoot the next segment's origin count.
    upper = (idx + 1 < segments_.size()) ? segments_[idx + 1].y0
            : open_                      ? open_y0_
                                         : static_cast<double>(observed_);
  }
  return std::clamp(y, 0.0, upper);
}

size_t PiecewiseModel::ParameterCount() const {
  size_t per_segment = constant_segments_ ? 2 : 3;
  size_t total = segments_.size() * per_segment + 2;
  if (open_) total += per_segment;
  return total;
}

size_t PiecewiseModel::SegmentCount() const {
  return segments_.size() + (open_ ? 1 : 0);
}

std::string_view PiecewiseModel::Name() const {
  return constant_segments_ ? "pw-constant" : "pw-linear";
}

}  // namespace innet::learned
