#include "learned/count_model.h"

#include "learned/piecewise_model.h"
#include "learned/polynomial_model.h"
#include "util/logging.h"

namespace innet::learned {

std::string_view ModelTypeName(ModelType type) {
  switch (type) {
    case ModelType::kLinear:
      return "linear";
    case ModelType::kQuadratic:
      return "quadratic";
    case ModelType::kCubic:
      return "cubic";
    case ModelType::kPiecewiseLinear:
      return "pw-linear";
    case ModelType::kPiecewiseConstant:
      return "pw-constant";
  }
  return "unknown";
}

std::unique_ptr<CountModel> CreateCountModel(ModelType type,
                                             const ModelOptions& options) {
  switch (type) {
    case ModelType::kLinear:
      return std::make_unique<PolynomialModel>(1, options.time_scale);
    case ModelType::kQuadratic:
      return std::make_unique<PolynomialModel>(2, options.time_scale);
    case ModelType::kCubic:
      return std::make_unique<PolynomialModel>(3, options.time_scale);
    case ModelType::kPiecewiseLinear:
      return std::make_unique<PiecewiseModel>(options.epsilon,
                                              /*constant_segments=*/false);
    case ModelType::kPiecewiseConstant:
      return std::make_unique<PiecewiseModel>(options.epsilon,
                                              /*constant_segments=*/true);
  }
  INNET_CHECK(false);
  return nullptr;
}

}  // namespace innet::learned
