#include "sampling/sampler.h"

#include <algorithm>

#include "util/logging.h"

namespace innet::sampling {

std::vector<graph::NodeId> SensorSampler::SelectableSensors(
    const graph::DualGraph& dual) {
  std::vector<graph::NodeId> sensors;
  sensors.reserve(dual.NumNodes() - 1);
  for (graph::NodeId n = 0; n < dual.NumNodes(); ++n) {
    if (n == dual.ExtNode()) continue;
    sensors.push_back(n);
  }
  return sensors;
}

void SensorSampler::TopUpUniform(const graph::DualGraph& dual, size_t m,
                                 util::Rng& rng,
                                 std::vector<graph::NodeId>* selected) {
  std::vector<graph::NodeId> sensors = SelectableSensors(dual);
  size_t target = std::min(m, sensors.size());
  if (selected->size() >= target) return;
  std::vector<bool> taken(dual.NumNodes(), false);
  for (graph::NodeId n : *selected) taken[n] = true;
  std::vector<graph::NodeId> remaining;
  for (graph::NodeId n : sensors) {
    if (!taken[n]) remaining.push_back(n);
  }
  rng.Shuffle(remaining);
  for (graph::NodeId n : remaining) {
    if (selected->size() >= target) break;
    selected->push_back(n);
  }
}

}  // namespace innet::sampling
