#include "sampling/samplers.h"

#include <algorithm>
#include <cmath>

#include "geometry/rect.h"
#include "spatial/grid.h"
#include "spatial/kdtree.h"
#include "spatial/quadtree.h"
#include "util/logging.h"

namespace innet::sampling {

namespace {

// Positions of selectable sensors, parallel to SelectableSensors(dual).
std::vector<geometry::Point> SensorPositions(
    const graph::DualGraph& dual, const std::vector<graph::NodeId>& sensors) {
  std::vector<geometry::Point> positions;
  positions.reserve(sensors.size());
  for (graph::NodeId n : sensors) positions.push_back(dual.Position(n));
  return positions;
}

// Weighted draw among cell members; `weights` is indexed by dual node id
// (empty = uniform).
size_t DrawMember(const std::vector<size_t>& members,
                  const std::vector<graph::NodeId>& sensors,
                  const std::vector<double>& weights, util::Rng& rng) {
  INNET_CHECK(!members.empty());
  if (weights.empty()) {
    return members[rng.UniformIndex(members.size())];
  }
  std::vector<double> member_weights;
  member_weights.reserve(members.size());
  double total = 0.0;
  for (size_t idx : members) {
    double w = weights[sensors[idx]];
    member_weights.push_back(w);
    total += w;
  }
  if (total <= 0.0) {
    return members[rng.UniformIndex(members.size())];
  }
  return members[rng.WeightedIndex(member_weights)];
}

// Picks one representative per cell: nearest to the cell's point centroid or
// a (possibly weighted) random member.
graph::NodeId PickFromCell(const std::vector<size_t>& cell,
                           const std::vector<geometry::Point>& positions,
                           const std::vector<graph::NodeId>& sensors,
                           const std::vector<double>& weights,
                           bool pick_center, util::Rng& rng) {
  INNET_CHECK(!cell.empty());
  if (!pick_center) {
    return sensors[DrawMember(cell, sensors, weights, rng)];
  }
  geometry::Point centroid;
  for (size_t idx : cell) centroid = centroid + positions[idx];
  centroid = centroid / static_cast<double>(cell.size());
  size_t best = cell[0];
  double best_d2 = geometry::DistanceSquared(positions[best], centroid);
  for (size_t idx : cell) {
    double d2 = geometry::DistanceSquared(positions[idx], centroid);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = idx;
    }
  }
  return sensors[best];
}

}  // namespace

std::vector<graph::NodeId> UniformSampler::Select(
    const graph::DualGraph& dual, size_t m, util::Rng& rng) const {
  std::vector<graph::NodeId> sensors = SelectableSensors(dual);
  size_t target = std::min(m, sensors.size());
  std::vector<graph::NodeId> selected;
  if (weights_.empty()) {
    std::vector<size_t> picks =
        rng.SampleWithoutReplacement(sensors.size(), target);
    selected.reserve(target);
    for (size_t idx : picks) selected.push_back(sensors[idx]);
    return selected;
  }
  // Weighted without replacement: repeated weighted draws with zeroing.
  INNET_CHECK(weights_.size() == dual.NumNodes());
  std::vector<double> weights;
  weights.reserve(sensors.size());
  for (graph::NodeId n : sensors) weights.push_back(weights_[n]);
  for (size_t i = 0; i < target; ++i) {
    size_t idx = rng.WeightedIndex(weights);
    selected.push_back(sensors[idx]);
    weights[idx] = 0.0;
    double remaining = 0.0;
    for (double w : weights) remaining += w;
    if (remaining <= 0.0) break;
  }
  TopUpUniform(dual, m, rng, &selected);
  return selected;
}

std::vector<graph::NodeId> SystematicSampler::Select(
    const graph::DualGraph& dual, size_t m, util::Rng& rng) const {
  std::vector<graph::NodeId> sensors = SelectableSensors(dual);
  if (sensors.empty() || m == 0) return {};
  std::vector<geometry::Point> positions = SensorPositions(dual, sensors);
  geometry::Rect bounds =
      geometry::BoundingBox(positions.begin(), positions.end()).Inflated(1.0);

  // Grid with ~m cells matching the domain aspect ratio.
  double aspect = bounds.Width() / bounds.Height();
  size_t ny = std::max<size_t>(
      1, static_cast<size_t>(std::lround(
             std::sqrt(static_cast<double>(m) / std::max(aspect, 1e-9)))));
  size_t nx = std::max<size_t>(
      1, (m + ny - 1) / ny);
  spatial::UniformGrid grid(bounds, nx, ny, positions);

  std::vector<graph::NodeId> selected;
  for (size_t cell = 0; cell < grid.num_cells() && selected.size() < m;
       ++cell) {
    const std::vector<size_t>& members = grid.PointsInCell(cell);
    if (members.empty()) continue;
    if (pick_center_) {
      geometry::Point center = grid.CellCenter(cell);
      size_t best = members[0];
      double best_d2 = geometry::DistanceSquared(positions[best], center);
      for (size_t idx : members) {
        double d2 = geometry::DistanceSquared(positions[idx], center);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = idx;
        }
      }
      selected.push_back(sensors[best]);
    } else {
      selected.push_back(
          sensors[DrawMember(members, sensors, weights_, rng)]);
    }
  }
  TopUpUniform(dual, m, rng, &selected);
  return selected;
}

std::vector<graph::NodeId> StratifiedSampler::Select(
    const graph::DualGraph& dual, size_t m, util::Rng& rng) const {
  std::vector<graph::NodeId> sensors = SelectableSensors(dual);
  if (sensors.empty() || m == 0) return {};
  std::vector<geometry::Point> positions = SensorPositions(dual, sensors);
  geometry::Rect bounds =
      geometry::BoundingBox(positions.begin(), positions.end()).Inflated(1.0);
  spatial::UniformGrid strata(bounds, strata_x_, strata_y_, positions);

  // Equal-area strata: the area-proportional allocation (Eq. in §4.3) is an
  // equal share per stratum, with remainders spread over the first strata.
  size_t num_strata = strata.num_cells();
  size_t base = m / num_strata;
  size_t remainder = m % num_strata;
  std::vector<graph::NodeId> selected;
  for (size_t s = 0; s < num_strata; ++s) {
    size_t quota = base + (s < remainder ? 1 : 0);
    const std::vector<size_t>& members = strata.PointsInCell(s);
    quota = std::min(quota, members.size());
    if (weights_.empty()) {
      std::vector<size_t> picks =
          rng.SampleWithoutReplacement(members.size(), quota);
      for (size_t p : picks) selected.push_back(sensors[members[p]]);
    } else {
      // Weighted without replacement within the stratum.
      std::vector<size_t> pool(members.begin(), members.end());
      for (size_t draw = 0; draw < quota && !pool.empty(); ++draw) {
        size_t idx = DrawMember(pool, sensors, weights_, rng);
        selected.push_back(sensors[idx]);
        pool.erase(std::find(pool.begin(), pool.end(), idx));
      }
    }
  }
  TopUpUniform(dual, m, rng, &selected);
  return selected;
}

std::vector<graph::NodeId> KdTreeSampler::Select(const graph::DualGraph& dual,
                                                 size_t m,
                                                 util::Rng& rng) const {
  std::vector<graph::NodeId> sensors = SelectableSensors(dual);
  if (sensors.empty() || m == 0) return {};
  std::vector<geometry::Point> positions = SensorPositions(dual, sensors);
  std::vector<std::vector<size_t>> cells =
      spatial::KdTree::PartitionIntoCells(positions, std::min(m, sensors.size()));
  std::vector<graph::NodeId> selected;
  for (const std::vector<size_t>& cell : cells) {
    if (selected.size() >= m) break;
    selected.push_back(
        PickFromCell(cell, positions, sensors, weights_, pick_center_, rng));
  }
  TopUpUniform(dual, m, rng, &selected);
  return selected;
}

std::vector<graph::NodeId> QuadTreeSampler::Select(
    const graph::DualGraph& dual, size_t m, util::Rng& rng) const {
  std::vector<graph::NodeId> sensors = SelectableSensors(dual);
  if (sensors.empty() || m == 0) return {};
  std::vector<geometry::Point> positions = SensorPositions(dual, sensors);
  std::vector<std::vector<size_t>> cells = spatial::QuadTree::PartitionIntoCells(
      positions, std::min(m, sensors.size()));
  std::vector<graph::NodeId> selected;
  for (const std::vector<size_t>& cell : cells) {
    if (selected.size() >= m) break;
    selected.push_back(
        PickFromCell(cell, positions, sensors, weights_, pick_center_, rng));
  }
  TopUpUniform(dual, m, rng, &selected);
  return selected;
}

std::vector<std::unique_ptr<SensorSampler>> AllSamplers() {
  std::vector<std::unique_ptr<SensorSampler>> samplers;
  samplers.push_back(std::make_unique<UniformSampler>());
  samplers.push_back(std::make_unique<SystematicSampler>());
  samplers.push_back(std::make_unique<StratifiedSampler>());
  samplers.push_back(std::make_unique<KdTreeSampler>());
  samplers.push_back(std::make_unique<QuadTreeSampler>());
  return samplers;
}

}  // namespace innet::sampling
