// Query-oblivious sensor selection (§4.3): choose m communication sensors
// from the sensing graph's nodes when nothing is known about the query
// distribution.
#ifndef INNET_SAMPLING_SAMPLER_H_
#define INNET_SAMPLING_SAMPLER_H_

#include <string_view>
#include <vector>

#include "graph/dual_graph.h"
#include "util/rng.h"

namespace innet::sampling {

/// Strategy interface. Select() returns distinct sensor node ids (dual node
/// ids; the ext node is never selected). Implementations return exactly
/// min(m, available) sensors: cell-based samplers top up uniformly when
/// their cells yield fewer (documented per sampler).
class SensorSampler {
 public:
  virtual ~SensorSampler() = default;

  virtual std::vector<graph::NodeId> Select(const graph::DualGraph& dual,
                                            size_t m,
                                            util::Rng& rng) const = 0;

  virtual std::string_view Name() const = 0;

  /// Per-sensor selection weights; empty means uniform. Used to make any
  /// sampler query-adaptive by weighting nodes by how often they served
  /// past queries (§4.3, last paragraph).
  void SetWeights(std::vector<double> weights) {
    weights_ = std::move(weights);
  }
  const std::vector<double>& weights() const { return weights_; }

 protected:
  /// All selectable sensors (every dual node except the ext node).
  static std::vector<graph::NodeId> SelectableSensors(
      const graph::DualGraph& dual);

  /// Pads `selected` with uniform draws from the unselected sensors until it
  /// reaches min(m, available).
  static void TopUpUniform(const graph::DualGraph& dual, size_t m,
                           util::Rng& rng,
                           std::vector<graph::NodeId>* selected);

  std::vector<double> weights_;
};

}  // namespace innet::sampling

#endif  // INNET_SAMPLING_SAMPLER_H_
