// Concrete sensor samplers (§4.3, Fig. 4a-e).
#ifndef INNET_SAMPLING_SAMPLERS_H_
#define INNET_SAMPLING_SAMPLERS_H_

#include <memory>

#include "sampling/sampler.h"

namespace innet::sampling {

/// Uniform random sampling: m sensors with equal probability (weighted when
/// weights are set). Biased toward denser regions.
class UniformSampler : public SensorSampler {
 public:
  std::vector<graph::NodeId> Select(const graph::DualGraph& dual, size_t m,
                                    util::Rng& rng) const override;
  std::string_view Name() const override { return "uniform"; }
};

/// Systematic sampling: a virtual grid of ~m cells over the domain, one
/// sensor per non-empty cell (nearest to the cell center or random),
/// topped up uniformly when empty cells leave a shortfall.
class SystematicSampler : public SensorSampler {
 public:
  /// `pick_center`: choose the sensor nearest the cell center instead of a
  /// random cell member.
  explicit SystematicSampler(bool pick_center = true)
      : pick_center_(pick_center) {}

  std::vector<graph::NodeId> Select(const graph::DualGraph& dual, size_t m,
                                    util::Rng& rng) const override;
  std::string_view Name() const override { return "systematic"; }

 private:
  bool pick_center_;
};

/// Stratified sampling: the domain is split into `strata_x * strata_y`
/// equal-area strata ("districts"); the per-stratum allocation is
/// proportional to stratum area (equal here), redistributing shortfalls.
class StratifiedSampler : public SensorSampler {
 public:
  StratifiedSampler(size_t strata_x = 4, size_t strata_y = 4)
      : strata_x_(strata_x), strata_y_(strata_y) {}

  std::vector<graph::NodeId> Select(const graph::DualGraph& dual, size_t m,
                                    util::Rng& rng) const override;
  std::string_view Name() const override { return "stratified"; }

 private:
  size_t strata_x_;
  size_t strata_y_;
};

/// Hierarchical space-partition sampling with a kd-tree: partition sensors
/// into m kd cells, pick one per cell.
class KdTreeSampler : public SensorSampler {
 public:
  explicit KdTreeSampler(bool pick_center = false)
      : pick_center_(pick_center) {}

  std::vector<graph::NodeId> Select(const graph::DualGraph& dual, size_t m,
                                    util::Rng& rng) const override;
  std::string_view Name() const override { return "kd-tree"; }

 private:
  bool pick_center_;
};

/// Hierarchical space-partition sampling with a QuadTree.
class QuadTreeSampler : public SensorSampler {
 public:
  explicit QuadTreeSampler(bool pick_center = false)
      : pick_center_(pick_center) {}

  std::vector<graph::NodeId> Select(const graph::DualGraph& dual, size_t m,
                                    util::Rng& rng) const override;
  std::string_view Name() const override { return "quadtree"; }

 private:
  bool pick_center_;
};

/// All five samplers, in the paper's presentation order.
std::vector<std::unique_ptr<SensorSampler>> AllSamplers();

}  // namespace innet::sampling

#endif  // INNET_SAMPLING_SAMPLERS_H_
