#include "faults/health_monitor.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace innet::faults {

const char* SensorStatusName(SensorStatus status) {
  switch (status) {
    case SensorStatus::kHealthy:
      return "healthy";
    case SensorStatus::kDegraded:
      return "degraded";
    case SensorStatus::kDead:
      return "dead";
  }
  return "unknown";
}

SensorHealthMonitor::SensorHealthMonitor(const core::SensorNetwork& network,
                                         const HealthMonitorOptions& options)
    : network_(network), options_(options) {
  obs::MetricsRegistry& registry = options.registry != nullptr
                                       ? *options.registry
                                       : obs::MetricsRegistry::Global();
  transitions_metric_ = &registry.GetCounter(
      "innet_health_transitions",
      "Per-sensor health status transitions observed by the monitor");
  windows_metric_ = &registry.GetCounter(
      "innet_health_windows_closed",
      "Observation windows closed by the health monitor");
  dead_metric_ = &registry.GetGauge("innet_sensors_dead",
                                    "Sensors currently declared dead");
  degraded_metric_ = &registry.GetGauge(
      "innet_sensors_degraded", "Sensors currently declared degraded");
  INNET_CHECK(options.window > 0.0);
  INNET_CHECK(options.dead_threshold >= 0.0 &&
              options.dead_threshold <= options.degraded_threshold);
  INNET_CHECK(options.dead_after_windows >= 1);
  size_t num_sensors = network.sensing().NumNodes();
  observed_.assign(num_sensors, 0);
  silent_streak_.assign(num_sensors, 0);
  status_.assign(num_sensors, SensorStatus::kHealthy);
}

void SensorHealthMonitor::Calibrate(
    const std::vector<mobility::CrossingEvent>& reference, double horizon) {
  INNET_CHECK(horizon > 0.0);
  size_t num_windows =
      static_cast<size_t>(std::ceil(horizon / options_.window));
  profile_.assign(num_windows, std::vector<double>(observed_.size(), 0.0));
  for (const mobility::CrossingEvent& event : reference) {
    graph::NodeId owner = network_.EdgeOwner(event.edge);
    if (owner == graph::kInvalidNode) continue;
    size_t w = static_cast<size_t>(
        std::floor(std::max(event.time, 0.0) / options_.window));
    if (w >= num_windows) w = num_windows - 1;
    profile_[w][owner] += 1.0;
  }
  calibrated_ = true;
}

void SensorHealthMonitor::OnEvent(const mobility::CrossingEvent& event) {
  AdvanceTo(event.time);
  graph::NodeId owner = network_.EdgeOwner(event.edge);
  if (owner == graph::kInvalidNode) return;
  ++observed_[owner];
}

void SensorHealthMonitor::AdvanceTo(double time) {
  while (time >= window_start_ + options_.window) CloseWindow();
}

void SensorHealthMonitor::CloseWindow() {
  INNET_CHECK(calibrated_);
  // Windows beyond the calibrated profile have no expectation to judge
  // against; close them silently.
  if (windows_closed_ >= profile_.size()) {
    std::fill(observed_.begin(), observed_.end(), 0);
    window_start_ += options_.window;
    ++windows_closed_;
    windows_metric_->Increment();
    return;
  }
  const std::vector<double>& expected_now = profile_[windows_closed_];
  bool changed = false;
  uint64_t transitions = 0;
  for (graph::NodeId s = 0; s < status_.size(); ++s) {
    double expected = expected_now[s];
    if (expected < options_.min_expected_events) continue;
    double ratio = static_cast<double>(observed_[s]) / expected;

    SensorStatus next = status_[s];
    if (ratio <= options_.dead_threshold) {
      ++silent_streak_[s];
      next = silent_streak_[s] >= options_.dead_after_windows
                 ? SensorStatus::kDead
                 : SensorStatus::kDegraded;
    } else {
      silent_streak_[s] = 0;
      next = ratio < options_.degraded_threshold ? SensorStatus::kDegraded
                                                 : SensorStatus::kHealthy;
    }
    if (next != status_[s]) {
      status_[s] = next;
      changed = true;
      ++transitions;
    }
  }
  std::fill(observed_.begin(), observed_.end(), 0);
  window_start_ += options_.window;
  ++windows_closed_;
  windows_metric_->Increment();
  if (changed) {
    num_dead_ = 0;
    num_degraded_ = 0;
    for (SensorStatus s : status_) {
      if (s == SensorStatus::kDead) ++num_dead_;
      if (s == SensorStatus::kDegraded) ++num_degraded_;
    }
    ++generation_;
    transitions_metric_->Increment(transitions);
    dead_metric_->Set(static_cast<double>(num_dead_));
    degraded_metric_->Set(static_cast<double>(num_degraded_));
  }
}

SensorStatus SensorHealthMonitor::Status(graph::NodeId sensor) const {
  return sensor < status_.size() ? status_[sensor] : SensorStatus::kHealthy;
}

bool SensorHealthMonitor::IsFailed(graph::NodeId sensor) const {
  return Status(sensor) == SensorStatus::kDead;
}

}  // namespace innet::faults
