// Deterministic fault injection for the sensing layer (docs/FAULTS.md).
//
// A FaultModel corrupts a crossing-event stream the way a real deployment
// would: sensors die (permanently or for bounded outages) and silently stop
// reporting crossings on the edges they own; individual deliveries are
// dropped, duplicated, or timestamped with bounded clock skew. All decisions
// are derived by hashing (seed, edge, direction, time), so the same seed
// reproduces the same corruption regardless of stream order or chunking.
#ifndef INNET_FAULTS_FAULT_MODEL_H_
#define INNET_FAULTS_FAULT_MODEL_H_

#include <cstdint>
#include <vector>

#include "core/health.h"
#include "core/sensor_network.h"
#include "mobility/trajectory.h"

namespace innet::faults {

/// Fault-injection knobs. All probabilities are per-delivery.
struct FaultOptions {
  uint64_t seed = 1;

  /// Fraction of physical sensors that die permanently. Death times are
  /// drawn uniformly in [death_time_min, death_time_max]; the defaults kill
  /// the chosen sensors for the whole horizon.
  double dead_sensor_fraction = 0.0;
  double death_time_min = 0.0;
  double death_time_max = 0.0;

  /// Fraction of (remaining) sensors that suffer one transient outage of
  /// `outage_duration`, starting uniformly in [0, horizon - duration].
  double transient_outage_fraction = 0.0;
  double outage_duration = 0.0;

  /// Event-time horizon used to place transient outages.
  double horizon = 1.0;

  /// Probability that a surviving delivery is lost on the edge→sink link.
  double drop_probability = 0.0;

  /// Probability that a surviving delivery arrives twice (exact duplicate).
  double duplicate_probability = 0.0;

  /// Per-event clock skew is uniform in [-clock_skew_bound, +bound].
  double clock_skew_bound = 0.0;
};

/// Result of passing a stream through the model, sorted by perceived time.
struct CorruptedStream {
  std::vector<mobility::CrossingEvent> events;
  size_t suppressed = 0;   ///< Events swallowed by dead sensors.
  size_t dropped = 0;      ///< Events lost in transit.
  size_t duplicated = 0;   ///< Extra copies delivered.
  size_t skewed = 0;       ///< Events whose timestamp was perturbed.
};

/// Seedable failure schedule plus delivery corruption. Also usable as the
/// ground-truth SensorHealthView ("oracle"): IsFailed reports exactly the
/// permanently dead sensors, which is what a perfect health monitor would
/// converge to.
class FaultModel : public core::SensorHealthView {
 public:
  FaultModel(const core::SensorNetwork& network, const FaultOptions& options);

  /// True for permanently dead sensors (the oracle health view). Transient
  /// outages do not count: they end, so rerouting around them forever would
  /// be over-conservative.
  bool IsFailed(graph::NodeId sensor) const override;

  /// The schedule is fixed at construction; the oracle never changes.
  uint64_t Generation() const override { return 0; }

  /// True when `sensor` is inside a dead interval (permanent or transient)
  /// at `time`.
  bool IsDeadAt(graph::NodeId sensor, double time) const;

  /// Permanently dead sensors, in id order.
  const std::vector<graph::NodeId>& DeadSensors() const { return dead_; }

  /// Applies the full model to a fault-free stream: suppression by dead
  /// sensors, drops, duplicates, skew. Input must be time-sorted; output is
  /// sorted by perceived time (ties broken stably).
  CorruptedStream ApplyToStream(
      const std::vector<mobility::CrossingEvent>& events) const;

  /// Degraded-answering knobs consistent with this model's parameters.
  core::DegradedOptions MakeDegradedOptions() const;

 private:
  struct Outage {
    double start = 0.0;
    double end = 0.0;  // Permanent deaths use +infinity.
  };

  // Uniform [0, 1) deviate determined by (seed, edge, direction, time
  // bits, salt) — order-independent and reproducible.
  double UnitHash(graph::EdgeId edge, bool forward, double time,
                  uint64_t salt) const;

  const core::SensorNetwork& network_;
  FaultOptions options_;
  std::vector<graph::NodeId> dead_;
  std::vector<uint8_t> is_dead_;                 // Indexed by sensor id.
  std::vector<std::vector<Outage>> schedules_;   // Indexed by sensor id.
};

}  // namespace innet::faults

#endif  // INNET_FAULTS_FAULT_MODEL_H_
