#include "faults/crash_points.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace innet::faults {

namespace {

// SplitMix64 step, the same mixer util::Rng seeds through — good avalanche
// so consecutive seeds pick unrelated (point, hits) pairs.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

int IndexOfKnown(const std::string& point) {
  const std::vector<std::string>& known = KnownCrashPoints();
  for (size_t i = 0; i < known.size(); ++i) {
    if (known[i] == point) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

const std::vector<std::string>& KnownCrashPoints() {
  static const std::vector<std::string>* const kPoints =
      new std::vector<std::string>{
          "wal:mid-segment",
          "wal:pre-fsync",
          "snapshot:post-header",
          "publish:pre-publish",
      };
  return *kPoints;
}

CrashPointRegistry::CrashPointRegistry()
    : known_counts_(new std::atomic<uint64_t>[KnownCrashPoints().size()]) {
  for (size_t i = 0; i < KnownCrashPoints().size(); ++i) {
    known_counts_[i].store(0, std::memory_order_relaxed);
  }
}

CrashPointRegistry& CrashPointRegistry::Global() {
  // First access honors INNET_CRASH_POINT, so any binary with probes can
  // be crash-tested from the outside without code changes.
  static CrashPointRegistry* const kRegistry = [] {
    auto* registry = new CrashPointRegistry();
    registry->ArmFromEnv();
    return registry;
  }();
  return *kRegistry;
}

void CrashPointRegistry::Arm(const std::string& point, uint64_t hits) {
  INNET_CHECK(hits >= 1);
  std::lock_guard<std::mutex> lock(mutex_);
  armed_point_ = point;
  remaining_.store(static_cast<int64_t>(hits), std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void CrashPointRegistry::ArmFromSeed(uint64_t seed, uint64_t max_hits) {
  INNET_CHECK(max_hits >= 1);
  const std::vector<std::string>& known = KnownCrashPoints();
  uint64_t h = Mix(seed);
  const std::string& point = known[h % known.size()];
  uint64_t hits = 1 + Mix(h) % max_hits;
  Arm(point, hits);
}

void CrashPointRegistry::ArmFromEnv() {
  const char* spec = std::getenv("INNET_CRASH_POINT");
  if (spec == nullptr || spec[0] == '\0') return;
  std::string text(spec);
  size_t colon = text.rfind(':');
  // "seed:N" routes through the deterministic seed map; anything else is a
  // literal point name with an optional ":hits" suffix.
  if (text.compare(0, 5, "seed:") == 0) {
    ArmFromSeed(std::strtoull(text.c_str() + 5, nullptr, 10));
    return;
  }
  uint64_t hits = 1;
  if (colon != std::string::npos && colon + 1 < text.size()) {
    char* end = nullptr;
    uint64_t parsed = std::strtoull(text.c_str() + colon + 1, &end, 10);
    if (end != nullptr && *end == '\0' && parsed >= 1) {
      hits = parsed;
      text = text.substr(0, colon);
    }
  }
  Arm(text, hits);
}

void CrashPointRegistry::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_release);
  armed_point_.clear();
  remaining_.store(0, std::memory_order_relaxed);
}

std::string CrashPointRegistry::ArmedPoint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return armed_.load(std::memory_order_relaxed) ? armed_point_
                                                : std::string();
}

void CrashPointRegistry::ReachArmed(const char* point) {
  int known = IndexOfKnown(point);
  if (known >= 0) {
    known_counts_[known].fetch_add(1, std::memory_order_relaxed);
  }
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (known < 0) {
      bool found = false;
      for (auto& [name, count] : other_counts_) {
        if (name == point) {
          ++count;
          found = true;
          break;
        }
      }
      if (!found) other_counts_.emplace_back(point, 1);
    }
    if (armed_.load(std::memory_order_relaxed) && armed_point_ == point) {
      fire = remaining_.fetch_sub(1, std::memory_order_relaxed) == 1;
    }
  }
  if (fire) {
    // Die the way a power cut would: no destructors, no stdio flush beyond
    // what already hit the kernel. _exit keeps the parent's waitpid status
    // recognizable; the durable state is whatever fsync'd before this line.
    std::fprintf(stderr, "[CRASH-POINT] %s firing, _exit(%d)\n", point,
                 kCrashExitCode);
    std::fflush(stderr);
    void (*hook)(const char*) =
        pre_crash_hook_.load(std::memory_order_acquire);
    if (hook != nullptr) hook(point);
    _exit(kCrashExitCode);
  }
}

uint64_t CrashPointRegistry::HitCount(const std::string& point) const {
  int known = IndexOfKnown(point);
  if (known >= 0) {
    return known_counts_[known].load(std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, count] : other_counts_) {
    if (name == point) return count;
  }
  return 0;
}

}  // namespace innet::faults
