// Sensor health tracking from observed crossing rates (docs/FAULTS.md).
//
// A dead sensor fails SILENTLY: it reports nothing, so absence of events is
// the only signal. The monitor calibrates a per-window expected crossing
// profile from a reference (fault-free or historical) stream — traffic is
// temporally non-uniform, so each window carries its own expectation — then
// compares it against the observed count as windows close. Sensors whose
// observed rate collapses are flagged degraded, then dead after consecutive
// silent windows; windows with too few expected events (or beyond the
// calibrated range) are never judged. Any status transition bumps
// Generation(), which downstream caches (runtime::BatchQueryEngine) use to
// invalidate resolved boundaries.
#ifndef INNET_FAULTS_HEALTH_MONITOR_H_
#define INNET_FAULTS_HEALTH_MONITOR_H_

#include <cstdint>
#include <vector>

#include "core/health.h"
#include "core/sensor_network.h"
#include "mobility/trajectory.h"
#include "obs/metrics.h"

namespace innet::faults {

/// Health-tracking knobs.
struct HealthMonitorOptions {
  /// Observation window length (event-time units). Statuses update at
  /// window boundaries as AdvanceTo / Finish close them.
  double window = 0.1;

  /// Observed/expected ratio at or below which a window counts as silent.
  double dead_threshold = 0.05;

  /// Observed/expected ratio below which a window counts as degraded.
  double degraded_threshold = 0.5;

  /// A (sensor, window) pair expecting fewer events than this is never
  /// judged — too quiet to distinguish "dead" from "unlucky".
  double min_expected_events = 4.0;

  /// Consecutive silent windows before a sensor is declared dead.
  size_t dead_after_windows = 2;

  /// Registry receiving the monitor's health metrics
  /// (`innet_health_transitions`, `innet_sensors_dead`, ...); nullptr
  /// means obs::MetricsRegistry::Global(). Must outlive the monitor.
  obs::MetricsRegistry* registry = nullptr;
};

enum class SensorStatus : uint8_t { kHealthy = 0, kDegraded = 1, kDead = 2 };

const char* SensorStatusName(SensorStatus status);

/// Streaming expected-vs-observed health tracker.
class SensorHealthMonitor : public core::SensorHealthView {
 public:
  SensorHealthMonitor(const core::SensorNetwork& network,
                      const HealthMonitorOptions& options);

  /// Learns the per-window expected crossing profile from a reference
  /// stream spanning [0, horizon]. Call once before feeding observations.
  void Calibrate(const std::vector<mobility::CrossingEvent>& reference,
                 double horizon);

  /// Feeds one observed (possibly corrupted) event. Closes any windows the
  /// event time has moved past. Events must arrive in non-decreasing
  /// perceived-time order.
  void OnEvent(const mobility::CrossingEvent& event);

  /// Closes all windows ending at or before `time` (use to flush silence:
  /// a dead sensor produces no events, so time must be advanced for its
  /// windows to close).
  void AdvanceTo(double time);

  /// Current status of a sensor.
  SensorStatus Status(graph::NodeId sensor) const;

  /// SensorHealthView: dead sensors are failed; degraded ones still report
  /// (partially) and keep their edges usable.
  bool IsFailed(graph::NodeId sensor) const override;

  /// Bumped on every batch of status transitions.
  uint64_t Generation() const override { return generation_; }

  size_t NumDead() const { return num_dead_; }
  size_t NumDegraded() const { return num_degraded_; }
  size_t WindowsClosed() const { return windows_closed_; }

 private:
  void CloseWindow();

  const core::SensorNetwork& network_;
  HealthMonitorOptions options_;

  // profile_[w][s]: reference events owned by sensor s inside window w.
  std::vector<std::vector<double>> profile_;
  std::vector<size_t> observed_;             // Counts in the open window.
  std::vector<size_t> silent_streak_;        // Consecutive silent windows.
  std::vector<SensorStatus> status_;

  double window_start_ = 0.0;
  uint64_t generation_ = 0;
  size_t num_dead_ = 0;
  size_t num_degraded_ = 0;
  size_t windows_closed_ = 0;
  bool calibrated_ = false;

  // Exported health metrics (docs/OBSERVABILITY.md): per-sensor status
  // transitions, closed windows, and current dead/degraded populations.
  obs::Counter* transitions_metric_;
  obs::Counter* windows_metric_;
  obs::Gauge* dead_metric_;
  obs::Gauge* degraded_metric_;
};

}  // namespace innet::faults

#endif  // INNET_FAULTS_HEALTH_MONITOR_H_
