#include "faults/fault_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/logging.h"
#include "util/rng.h"

namespace innet::faults {

namespace {

constexpr uint64_t kDropSalt = 0x64726f70ULL;
constexpr uint64_t kDupSalt = 0x64757031ULL;
constexpr uint64_t kSkewSalt = 0x736b6577ULL;

uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultModel::FaultModel(const core::SensorNetwork& network,
                       const FaultOptions& options)
    : network_(network), options_(options) {
  INNET_CHECK(options.dead_sensor_fraction >= 0.0 &&
              options.dead_sensor_fraction <= 1.0);
  INNET_CHECK(options.drop_probability >= 0.0 &&
              options.drop_probability < 1.0);
  INNET_CHECK(options.duplicate_probability >= 0.0 &&
              options.duplicate_probability <= 1.0);
  INNET_CHECK(options.clock_skew_bound >= 0.0);

  const graph::DualGraph& dual = network.sensing();
  size_t num_sensors = dual.NumNodes();
  is_dead_.assign(num_sensors, 0);
  schedules_.resize(num_sensors);

  // Physical sensors only: the ⋆v_ext side has no device to fail.
  std::vector<graph::NodeId> physical;
  physical.reserve(num_sensors);
  for (graph::NodeId s = 0; s < num_sensors; ++s) {
    if (s != dual.ExtNode()) physical.push_back(s);
  }

  util::Rng rng(options.seed);
  constexpr double kForever = std::numeric_limits<double>::infinity();

  size_t num_dead = static_cast<size_t>(
      std::floor(options.dead_sensor_fraction *
                 static_cast<double>(physical.size())));
  std::vector<size_t> picks =
      rng.SampleWithoutReplacement(physical.size(), num_dead);
  std::sort(picks.begin(), picks.end());
  for (size_t pick : picks) {
    graph::NodeId s = physical[pick];
    double death = options.death_time_max > options.death_time_min
                       ? rng.Uniform(options.death_time_min,
                                     options.death_time_max)
                       : options.death_time_min;
    dead_.push_back(s);
    is_dead_[s] = 1;
    schedules_[s].push_back({death, kForever});
  }

  if (options.transient_outage_fraction > 0.0 &&
      options.outage_duration > 0.0) {
    std::vector<graph::NodeId> alive;
    for (graph::NodeId s : physical) {
      if (!is_dead_[s]) alive.push_back(s);
    }
    size_t num_out = static_cast<size_t>(
        std::floor(options.transient_outage_fraction *
                   static_cast<double>(alive.size())));
    std::vector<size_t> outs =
        rng.SampleWithoutReplacement(alive.size(), num_out);
    std::sort(outs.begin(), outs.end());
    double latest =
        std::max(options.horizon - options.outage_duration, 0.0);
    for (size_t pick : outs) {
      graph::NodeId s = alive[pick];
      double start = rng.Uniform(0.0, std::max(latest, 1e-12));
      schedules_[s].push_back({start, start + options.outage_duration});
    }
  }
}

bool FaultModel::IsFailed(graph::NodeId sensor) const {
  return sensor < is_dead_.size() && is_dead_[sensor] != 0;
}

bool FaultModel::IsDeadAt(graph::NodeId sensor, double time) const {
  if (sensor >= schedules_.size()) return false;
  for (const Outage& outage : schedules_[sensor]) {
    if (time >= outage.start && time < outage.end) return true;
  }
  return false;
}

double FaultModel::UnitHash(graph::EdgeId edge, bool forward, double time,
                            uint64_t salt) const {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(time));
  std::memcpy(&bits, &time, sizeof(bits));
  uint64_t x = Mix(options_.seed ^ salt);
  x = Mix(x ^ static_cast<uint64_t>(edge));
  x = Mix(x ^ (forward ? 0x5555555555555555ULL : 0xaaaaaaaaaaaaaaaaULL));
  x = Mix(x ^ bits);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

CorruptedStream FaultModel::ApplyToStream(
    const std::vector<mobility::CrossingEvent>& events) const {
  CorruptedStream out;
  out.events.reserve(events.size());
  for (const mobility::CrossingEvent& event : events) {
    graph::NodeId owner = network_.EdgeOwner(event.edge);
    if (owner != graph::kInvalidNode && IsDeadAt(owner, event.time)) {
      ++out.suppressed;
      continue;
    }
    if (options_.drop_probability > 0.0 &&
        UnitHash(event.edge, event.forward, event.time, kDropSalt) <
            options_.drop_probability) {
      ++out.dropped;
      continue;
    }
    mobility::CrossingEvent delivered = event;
    if (options_.clock_skew_bound > 0.0) {
      double u = UnitHash(event.edge, event.forward, event.time, kSkewSalt);
      delivered.time =
          std::max(0.0, event.time + (2.0 * u - 1.0) * options_.clock_skew_bound);
      if (delivered.time != event.time) ++out.skewed;
    }
    out.events.push_back(delivered);
    if (options_.duplicate_probability > 0.0 &&
        UnitHash(event.edge, event.forward, event.time, kDupSalt) <
            options_.duplicate_probability) {
      // Exact duplicate: same perceived timestamp, as produced by a
      // retransmission whose ack was lost.
      out.events.push_back(delivered);
      ++out.duplicated;
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const mobility::CrossingEvent& a,
                      const mobility::CrossingEvent& b) {
                     return a.time < b.time;
                   });
  return out;
}

core::DegradedOptions FaultModel::MakeDegradedOptions() const {
  core::DegradedOptions degraded;
  degraded.drop_rate_bound = options_.drop_probability;
  degraded.clock_skew_bound = options_.clock_skew_bound;
  return degraded;
}

}  // namespace innet::faults
