// Deterministic process-crash injection for durability testing
// (docs/FAULTS.md §"Process & storage faults").
//
// The sensing fault layer (fault_model.h) corrupts the event stream; this
// registry models the OTHER failure domain — the serving process itself
// dying mid-write. Durability-critical code paths declare named crash
// points (INNET_CRASH_POINT("wal:pre-fsync")); a test arms exactly one
// point, runs the write path in a child process, and the child dies with
// _exit(kCrashExitCode) the N-th time execution reaches the armed point.
// Recovery tests then assert the on-disk state restores bit-identically
// (tests/recovery_test.cc, CI job `crash-recovery`).
//
// Points are compiled in unconditionally: an unarmed Reach() is one relaxed
// atomic load, cheap enough for the ingest path. Arming is deterministic —
// ArmFromSeed(seed) hashes the seed onto (point, hit count), so a CI seed
// matrix covers the product space reproducibly.
#ifndef INNET_FAULTS_CRASH_POINTS_H_
#define INNET_FAULTS_CRASH_POINTS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace innet::faults {

/// The crash points registered by the durability layer, in the order the
/// write path reaches them. Kept in one table so seed-matrix tests and
/// ArmFromSeed enumerate exactly the points that exist.
///
///   wal:mid-segment       after appending one framed record, before the
///                         epoch commit record (torn segment tail)
///   wal:pre-fsync         commit record written and flushed, fsync not yet
///                         issued (commit may or may not survive)
///   snapshot:post-header  snapshot header written, CSR arrays not yet
///                         (torn .tmp file; the .snap rename never happens)
///   publish:pre-publish   epoch fully durable, in-memory store swap lost
const std::vector<std::string>& KnownCrashPoints();

/// Process-global switchboard for named crash points. Thread-safe: Reach()
/// may be called from any thread; the armed hit counter is atomic.
class CrashPointRegistry {
 public:
  /// Exit code of a process killed by an armed crash point. Distinct from
  /// every status the tools return on real errors so harnesses can tell an
  /// injected crash from an accidental one.
  static constexpr int kCrashExitCode = 87;

  static CrashPointRegistry& Global();

  /// Arms `point`: the `hits`-th Reach(point) after this call kills the
  /// process. hits >= 1. Re-arming replaces any previous armed point.
  void Arm(const std::string& point, uint64_t hits = 1);

  /// Deterministically maps `seed` to one (known point, hit count in
  /// [1, max_hits]) pair and arms it. The map is a bijection-free hash:
  /// consecutive seeds jump around the product space.
  void ArmFromSeed(uint64_t seed, uint64_t max_hits = 3);

  /// Arms from the INNET_CRASH_POINT environment variable when set.
  /// Accepted forms: "point" (hits=1), "point:N", or "seed:N" which calls
  /// ArmFromSeed(N). Child processes of crash-matrix tests use this.
  void ArmFromEnv();

  void Disarm();

  /// True when some point is armed (cheap pre-check for diagnostics; the
  /// hot path calls Reach directly).
  bool Armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Name of the armed point, or "" when disarmed.
  std::string ArmedPoint() const;

  /// Declares that execution reached `point`. Kills the process via
  /// _exit(kCrashExitCode) when `point` is armed and its countdown hits
  /// zero; otherwise returns after one relaxed load (unarmed) or one
  /// fetch_sub (armed).
  void Reach(const char* point) {
    if (!armed_.load(std::memory_order_relaxed)) return;
    ReachArmed(point);
  }

  /// Reach() calls observed per point while the registry was armed (the
  /// unarmed fast path skips counting to stay one atomic load). Tests
  /// census a code path by arming an unreachable hit count and reading
  /// these counters afterwards.
  uint64_t HitCount(const std::string& point) const;

  /// Installs a hook that runs right before an armed point _exit()s, with
  /// the firing point's name — the flight recorder dumps its black box
  /// here. The hook must be async-termination-safe (the process is about
  /// to die; no locks it might share with suspended threads). Binaries
  /// wire this up (e.g. to obs::FlightRecorder::CrashPointHook); the
  /// faults library itself stays free of an obs dependency. nullptr
  /// clears.
  void SetPreCrashHook(void (*hook)(const char* point)) {
    pre_crash_hook_.store(hook, std::memory_order_release);
  }

 private:
  CrashPointRegistry();
  void ReachArmed(const char* point);

  std::atomic<bool> armed_{false};
  std::atomic<void (*)(const char*)> pre_crash_hook_{nullptr};
  mutable std::mutex mutex_;
  std::string armed_point_;
  std::atomic<int64_t> remaining_{0};
  // Hit counters parallel to KnownCrashPoints(); unknown points land in a
  // lock-protected side list (they only occur in tests).
  std::unique_ptr<std::atomic<uint64_t>[]> known_counts_;
  std::vector<std::pair<std::string, uint64_t>> other_counts_;
};

}  // namespace innet::faults

/// Marks a named crash point. Compiled in all builds; costs one relaxed
/// atomic load when nothing is armed.
#define INNET_CRASH_POINT(name) \
  ::innet::faults::CrashPointRegistry::Global().Reach(name)

#endif  // INNET_FAULTS_CRASH_POINTS_H_
