// Dual (sensing) graph of a planar mobility graph (§3.2.3).
//
// Dual node ids coincide with primal face ids: sensor `f` covers primal face
// `f` and sits at its centroid. The dual node of the primal outer face is the
// "infinity node" ⋆v_ext (Fig. 8a): the virtual source/sink for objects
// entering or leaving the mobility domain.
//
// Each primal edge (road) corresponds 1:1 to a dual edge (sensor
// communication link / sensing border): an object traversing road (A, B)
// crosses exactly that dual edge, moving from the dual face around junction A
// to the dual face around junction B (vertex-edge duality, §4.7.1). Dual
// faces therefore correspond to primal junctions, and the boundary of a set
// of dual faces is exactly the set of dual edges whose primal edge has one
// endpoint inside the junction set — the key identity the query processor is
// built on.
#ifndef INNET_GRAPH_DUAL_GRAPH_H_
#define INNET_GRAPH_DUAL_GRAPH_H_

#include <vector>

#include "geometry/polygon.h"
#include "graph/planar_graph.h"
#include "graph/weighted_adjacency.h"

namespace innet::graph {

/// Dual of a PlanarGraph. Node ids are primal face ids; edge ids are primal
/// edge ids (the duality is 1:1). Bridge edges of the primal (same face on
/// both sides) would be dual self-loops and are omitted from adjacency.
class DualGraph {
 public:
  explicit DualGraph(const PlanarGraph& primal);

  const PlanarGraph& primal() const { return *primal_; }

  /// Number of dual nodes (== primal faces, including the ext node).
  size_t NumNodes() const { return positions_.size(); }

  /// Dual node of the primal outer face.
  NodeId ExtNode() const { return ext_node_; }

  /// Sensor position: centroid of the primal face (for the ext node a point
  /// outside the domain's bounding box).
  const geometry::Point& Position(NodeId n) const { return positions_[n]; }
  const std::vector<geometry::Point>& positions() const { return positions_; }

  /// Weighted adjacency (centroid-to-centroid Euclidean weights). Arc `via`
  /// fields are primal edge ids.
  const WeightedAdjacency& adjacency() const { return adjacency_; }

  /// The two dual endpoints of dual edge e (primal edge id): the primal
  /// faces left/right of e.
  NodeId EndpointA(EdgeId primal_edge) const {
    return primal_->Edge(primal_edge).left;
  }
  NodeId EndpointB(EdgeId primal_edge) const {
    return primal_->Edge(primal_edge).right;
  }

  /// The dual face around primal junction v, as a polygon through the
  /// centroids of the faces incident to v in rotation order. This is the
  /// sensing cell whose crossings are the crossings of roads incident to v.
  geometry::Polygon JunctionCell(NodeId primal_node) const;

 private:
  const PlanarGraph* primal_;
  std::vector<geometry::Point> positions_;
  WeightedAdjacency adjacency_;
  NodeId ext_node_ = kInvalidNode;
};

}  // namespace innet::graph

#endif  // INNET_GRAPH_DUAL_GRAPH_H_
