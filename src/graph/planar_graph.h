// Embedded planar graph with combinatorial face extraction.
//
// This is the representation behind both domains of §3.2: the mobility graph
// `⋆G` is stored directly as a PlanarGraph; the sensing graph `G` (its dual)
// is derived from the faces computed here (see graph/dual.h).
//
// Faces are traced from the rotation system induced by node coordinates:
// interior faces come out counter-clockwise, the unique outer face clockwise
// (negative signed area). Every directed half-edge belongs to exactly one
// face, giving the left/right face of each undirected edge.
#ifndef INNET_GRAPH_PLANAR_GRAPH_H_
#define INNET_GRAPH_PLANAR_GRAPH_H_

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "geometry/point.h"
#include "geometry/polygon.h"

namespace innet::graph {

using NodeId = uint32_t;
using EdgeId = uint32_t;
using FaceId = uint32_t;

inline constexpr FaceId kInvalidFace = std::numeric_limits<FaceId>::max();
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// An undirected edge with the faces on either side. `left` is the face on
/// the left when traveling u -> v.
struct EdgeRecord {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  FaceId left = kInvalidFace;
  FaceId right = kInvalidFace;

  /// The endpoint other than `n`. Requires n to be an endpoint.
  NodeId Other(NodeId n) const { return n == u ? v : u; }
};

/// A face traced from the rotation system. `boundary_nodes[i]` is the source
/// of `boundary_edges[i]`; the walk is closed. Bridges appear twice (once per
/// direction).
struct FaceRecord {
  std::vector<NodeId> boundary_nodes;
  std::vector<EdgeId> boundary_edges;
  double signed_area = 0.0;
  bool is_outer = false;
};

/// A neighbor entry in a node's rotation order.
struct Neighbor {
  NodeId node;
  EdgeId edge;
};

/// Connected, simple, embedded planar graph. Nodes carry coordinates; edges
/// are straight segments that must not cross (not re-checked here: inputs
/// come from constructions that guarantee it, e.g., Delaunay subsets and
/// shortest-path unions).
class PlanarGraph {
 public:
  /// Builds the graph and its rotation system. Edges must be unique,
  /// loop-free pairs of valid node ids, and the graph must be connected.
  PlanarGraph(std::vector<geometry::Point> positions,
              std::vector<std::pair<NodeId, NodeId>> edges);

  PlanarGraph(const PlanarGraph&) = default;
  PlanarGraph(PlanarGraph&&) = default;
  PlanarGraph& operator=(const PlanarGraph&) = default;
  PlanarGraph& operator=(PlanarGraph&&) = default;

  size_t NumNodes() const { return positions_.size(); }
  size_t NumEdges() const { return edges_.size(); }
  size_t NumFaces() const { return faces_.size(); }

  const geometry::Point& Position(NodeId n) const { return positions_[n]; }
  const std::vector<geometry::Point>& positions() const { return positions_; }

  const EdgeRecord& Edge(EdgeId e) const { return edges_[e]; }
  const std::vector<EdgeRecord>& edges() const { return edges_; }

  const FaceRecord& Face(FaceId f) const { return faces_[f]; }
  const std::vector<FaceRecord>& faces() const { return faces_; }

  /// The unique face with negative signed area.
  FaceId OuterFace() const { return outer_face_; }

  /// Euclidean length of edge e.
  double EdgeLength(EdgeId e) const;

  /// Neighbors of n in counter-clockwise rotation order.
  const std::vector<Neighbor>& NeighborsOf(NodeId n) const {
    return adjacency_[n];
  }

  size_t Degree(NodeId n) const { return adjacency_[n].size(); }

  /// Edge id connecting u and v, or kInvalidEdge when not adjacent.
  EdgeId EdgeBetween(NodeId u, NodeId v) const;

  /// Boundary polygon of face f (vertex ring along the traced walk).
  geometry::Polygon FacePolygon(FaceId f) const;

  /// The faces incident to node n, in rotation order (one per incident
  /// half-edge leaving n: the face to the left of that half-edge). These are
  /// the boundary faces of the dual face around n.
  std::vector<FaceId> FacesAroundNode(NodeId n) const;

  /// Directed half-edge helpers. Half-edge 2e is u->v of edge e, 2e+1 is
  /// v->u.
  NodeId HalfEdgeSource(uint32_t h) const {
    const EdgeRecord& e = edges_[h >> 1];
    return (h & 1) == 0 ? e.u : e.v;
  }
  NodeId HalfEdgeTarget(uint32_t h) const {
    const EdgeRecord& e = edges_[h >> 1];
    return (h & 1) == 0 ? e.v : e.u;
  }

  /// Face to the left of directed half-edge h.
  FaceId FaceOfHalfEdge(uint32_t h) const { return half_edge_face_[h]; }

 private:
  void BuildAdjacency();
  void BuildFaces();
  uint32_t NextHalfEdgeInFace(uint32_t h) const;

  std::vector<geometry::Point> positions_;
  std::vector<EdgeRecord> edges_;
  std::vector<std::vector<Neighbor>> adjacency_;  // CCW rotation order.
  // Position of half-edge h within adjacency_[source(h)].
  std::vector<uint32_t> slot_at_source_;
  std::vector<FaceId> half_edge_face_;
  std::vector<FaceRecord> faces_;
  FaceId outer_face_ = kInvalidFace;
};

}  // namespace innet::graph

#endif  // INNET_GRAPH_PLANAR_GRAPH_H_
