// Planarization of geometric graphs (§4.2): real road data contains edges
// that cross geometrically without sharing a junction (flyovers,
// underpasses, unsplit OSM ways). "We then generate the planarized graph by
// removing intersections from underpasses and flyovers by inserting nodes at
// the intersections" — Planarize() does exactly that: every proper crossing
// between two segments becomes a new junction splitting both edges.
#ifndef INNET_GRAPH_PLANARIZE_H_
#define INNET_GRAPH_PLANARIZE_H_

#include <utility>
#include <vector>

#include "geometry/point.h"
#include "graph/planar_graph.h"
#include "util/status.h"

namespace innet::graph {

/// Result of planarization: the embedded graph plus bookkeeping.
struct PlanarizeResult {
  PlanarGraph graph;
  /// Crossing junctions inserted (their ids start at the original node
  /// count).
  size_t inserted_nodes = 0;
  /// Original edges that were split.
  size_t split_edges = 0;
};

/// Planarizes a geometric graph given by `positions` and undirected
/// `edges`. Requirements checked (returned as InvalidArgument): valid
/// endpoint ids, no self loops, no duplicate edges, no duplicate positions,
/// and a connected result. Collinear-overlap edge pairs are rejected as
/// unplanarizable. Endpoint-touching edges are fine (shared junctions).
util::StatusOr<PlanarizeResult> Planarize(
    std::vector<geometry::Point> positions,
    std::vector<std::pair<NodeId, NodeId>> edges);

}  // namespace innet::graph

#endif  // INNET_GRAPH_PLANARIZE_H_
