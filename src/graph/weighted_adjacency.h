// Weighted adjacency-list view shared by the routing algorithms.
#ifndef INNET_GRAPH_WEIGHTED_ADJACENCY_H_
#define INNET_GRAPH_WEIGHTED_ADJACENCY_H_

#include <vector>

#include "graph/planar_graph.h"

namespace innet::graph {

/// One outgoing arc of a weighted graph. `via` identifies the underlying
/// undirected edge (primal edge id for dual graphs).
struct WeightedArc {
  NodeId to = kInvalidNode;
  EdgeId via = kInvalidEdge;
  double weight = 1.0;
};

/// Adjacency lists indexed by node id. Arcs appear in both directions for
/// undirected graphs.
using WeightedAdjacency = std::vector<std::vector<WeightedArc>>;

/// Builds the weighted adjacency of a planar graph with Euclidean edge
/// lengths as weights.
WeightedAdjacency EuclideanAdjacency(const PlanarGraph& graph);

}  // namespace innet::graph

#endif  // INNET_GRAPH_WEIGHTED_ADJACENCY_H_
