// Connected components and masked flood fill.
//
// The masked variant is the core of sampled-graph face assignment (§4.5):
// junctions connected through roads whose dual sensor edge is NOT monitored
// lie in the same face of the sampled graph G̃.
#ifndef INNET_GRAPH_CONNECTIVITY_H_
#define INNET_GRAPH_CONNECTIVITY_H_

#include <vector>

#include "graph/planar_graph.h"
#include "graph/weighted_adjacency.h"

namespace innet::graph {

/// Per-node component labels (0..count-1) plus the component count.
struct ComponentLabels {
  std::vector<uint32_t> label;
  uint32_t count = 0;
};

/// Connected components of a weighted adjacency.
ComponentLabels ConnectedComponents(const WeightedAdjacency& adjacency);

/// Connected components of `graph` using only edges NOT flagged in
/// `edge_removed` (indexed by EdgeId).
ComponentLabels ComponentsWithRemovedEdges(
    const PlanarGraph& graph, const std::vector<bool>& edge_removed);

/// True when the adjacency forms a single connected component (empty graphs
/// count as connected).
bool IsConnected(const WeightedAdjacency& adjacency);

}  // namespace innet::graph

#endif  // INNET_GRAPH_CONNECTIVITY_H_
