#include "graph/planarize.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "geometry/segment.h"
#include "graph/connectivity.h"
#include "graph/weighted_adjacency.h"
#include "util/logging.h"

namespace innet::graph {

namespace {

// Parameter of point p along segment ab (0 at a, 1 at b).
double ParamOf(const geometry::Point& a, const geometry::Point& b,
               const geometry::Point& p) {
  geometry::Point d = b - a;
  double len2 = geometry::Dot(d, d);
  if (len2 == 0.0) return 0.0;
  return geometry::Dot(p - a, d) / len2;
}

}  // namespace

util::StatusOr<PlanarizeResult> Planarize(
    std::vector<geometry::Point> positions,
    std::vector<std::pair<NodeId, NodeId>> edges) {
  size_t original_nodes = positions.size();
  // Validation.
  {
    std::set<std::pair<long long, long long>> seen_positions;
    for (const geometry::Point& p : positions) {
      auto key = std::make_pair(std::llround(p.x * 1e6),
                                std::llround(p.y * 1e6));
      if (!seen_positions.insert(key).second) {
        return util::InvalidArgumentError("duplicate node positions");
      }
    }
    std::set<std::pair<NodeId, NodeId>> seen_edges;
    for (const auto& [u, v] : edges) {
      if (u >= positions.size() || v >= positions.size()) {
        return util::InvalidArgumentError("edge endpoint out of range");
      }
      if (u == v) return util::InvalidArgumentError("self loop");
      auto key = std::minmax(u, v);
      if (!seen_edges.insert({key.first, key.second}).second) {
        return util::InvalidArgumentError("duplicate edge");
      }
    }
  }

  constexpr double kTouchEps2 = 1e-12;
  // Cut points per edge: (param, node id).
  std::vector<std::vector<std::pair<double, NodeId>>> cuts(edges.size());
  // Crossing-point dedup across pairs (multi-way crossings).
  std::map<std::pair<long long, long long>, NodeId> crossing_nodes;

  auto node_for_point = [&](const geometry::Point& p) -> NodeId {
    auto key = std::make_pair(std::llround(p.x * 1e6),
                              std::llround(p.y * 1e6));
    auto it = crossing_nodes.find(key);
    if (it != crossing_nodes.end()) return it->second;
    NodeId id = static_cast<NodeId>(positions.size());
    positions.push_back(p);
    crossing_nodes[key] = id;
    return id;
  };

  for (size_t i = 0; i < edges.size(); ++i) {
    geometry::Segment si(positions[edges[i].first],
                         positions[edges[i].second]);
    for (size_t j = i + 1; j < edges.size(); ++j) {
      bool share_endpoint = edges[i].first == edges[j].first ||
                            edges[i].first == edges[j].second ||
                            edges[i].second == edges[j].first ||
                            edges[i].second == edges[j].second;
      geometry::Segment sj(positions[edges[j].first],
                           positions[edges[j].second]);
      if (!si.Bounds().Inflated(1e-9).Intersects(sj.Bounds())) continue;

      // Proper crossing: one new junction splits both edges.
      std::optional<geometry::Point> crossing =
          geometry::CrossingPoint(si, sj);
      if (crossing.has_value()) {
        NodeId node = node_for_point(*crossing);
        cuts[i].emplace_back(ParamOf(si.a, si.b, *crossing), node);
        cuts[j].emplace_back(ParamOf(sj.a, sj.b, *crossing), node);
        continue;
      }
      if (!geometry::SegmentsIntersect(si, sj)) continue;

      // Touching without a proper crossing: an endpoint in the other
      // segment's INTERIOR becomes a cut at the existing node. This
      // resolves T-junctions and merges collinear overlaps (each covered
      // endpoint splits the covering edge; duplicate sub-edges collapse in
      // the output set).
      auto try_cut = [&](size_t target, const geometry::Segment& segment,
                         NodeId end) {
        if (geometry::PointSegmentDistanceSquared(positions[end], segment) >=
            kTouchEps2) {
          return false;
        }
        double t = ParamOf(segment.a, segment.b, positions[end]);
        if (t <= 1e-9 || t >= 1.0 - 1e-9) return false;  // At an endpoint.
        cuts[target].emplace_back(t, end);
        return true;
      };
      bool handled = false;
      handled |= try_cut(i, si, edges[j].first);
      handled |= try_cut(i, si, edges[j].second);
      handled |= try_cut(j, sj, edges[i].first);
      handled |= try_cut(j, sj, edges[i].second);
      if (!handled && !share_endpoint) {
        return util::InvalidArgumentError(
            "touching edges could not be planarized");
      }
    }
  }

  // Emit split edges.
  size_t split_edges = 0;
  std::set<std::pair<NodeId, NodeId>> out_edges;
  for (size_t i = 0; i < edges.size(); ++i) {
    std::vector<std::pair<double, NodeId>>& cut = cuts[i];
    if (!cut.empty()) ++split_edges;
    std::sort(cut.begin(), cut.end());
    // Deduplicate cut nodes (e.g., T-junction detected from both sides).
    cut.erase(std::unique(cut.begin(), cut.end(),
                          [](const auto& a, const auto& b) {
                            return a.second == b.second;
                          }),
              cut.end());
    NodeId prev = edges[i].first;
    for (const auto& [param, node] : cut) {
      if (node != prev) {
        auto key = std::minmax(prev, node);
        out_edges.insert({key.first, key.second});
      }
      prev = node;
    }
    if (prev != edges[i].second) {
      auto key = std::minmax(prev, edges[i].second);
      out_edges.insert({key.first, key.second});
    }
  }

  std::vector<std::pair<NodeId, NodeId>> final_edges(out_edges.begin(),
                                                     out_edges.end());
  // Connectivity check before the PlanarGraph constructor asserts it.
  {
    WeightedAdjacency adjacency(positions.size());
    for (const auto& [u, v] : final_edges) {
      adjacency[u].push_back({v, 0, 1.0});
      adjacency[v].push_back({u, 0, 1.0});
    }
    if (!IsConnected(adjacency)) {
      return util::InvalidArgumentError("planarized graph is disconnected");
    }
  }

  size_t inserted = positions.size() - original_nodes;
  return PlanarizeResult{
      PlanarGraph(std::move(positions), std::move(final_edges)), inserted,
      split_edges};
}

}  // namespace innet::graph
