// Dijkstra / BFS routing used to materialize sampled-graph edges as shortest
// paths in the sensing graph (§4.5) and to model in-network aggregation
// routes (§5.4).
#ifndef INNET_GRAPH_SHORTEST_PATH_H_
#define INNET_GRAPH_SHORTEST_PATH_H_

#include <optional>
#include <vector>

#include "graph/weighted_adjacency.h"

namespace innet::graph {

/// A node-and-edge path with its total weight.
struct Path {
  std::vector<NodeId> nodes;  // size k+1 for k edges
  std::vector<EdgeId> edges;  // `via` ids from the adjacency
  double cost = 0.0;
};

/// Shortest path from `src` to `dst`. Nodes flagged in `blocked` (if given)
/// may not be visited (src/dst must not be blocked). Returns nullopt when
/// unreachable.
std::optional<Path> ShortestPath(const WeightedAdjacency& adjacency,
                                 NodeId src, NodeId dst,
                                 const std::vector<bool>* blocked = nullptr);

/// Single-source shortest-path distances (infinity for unreachable nodes).
std::vector<double> DijkstraDistances(
    const WeightedAdjacency& adjacency, NodeId src,
    const std::vector<bool>* blocked = nullptr);

/// Single-source hop counts via BFS (UINT32_MAX for unreachable nodes).
std::vector<uint32_t> BfsHops(const WeightedAdjacency& adjacency, NodeId src);

/// Average shortest-path hop length over `num_samples` random source pairs,
/// a proxy for the small-world factor ℓ_G of §4.9. Pairs are derived
/// deterministically from `seed`.
double EstimateAveragePathHops(const WeightedAdjacency& adjacency,
                               size_t num_samples, uint64_t seed);

}  // namespace innet::graph

#endif  // INNET_GRAPH_SHORTEST_PATH_H_
