#include "graph/connectivity.h"

#include <limits>
#include <queue>

#include "util/logging.h"

namespace innet::graph {

namespace {
constexpr uint32_t kUnlabeled = std::numeric_limits<uint32_t>::max();
}  // namespace

ComponentLabels ConnectedComponents(const WeightedAdjacency& adjacency) {
  ComponentLabels result;
  result.label.assign(adjacency.size(), kUnlabeled);
  for (NodeId start = 0; start < adjacency.size(); ++start) {
    if (result.label[start] != kUnlabeled) continue;
    uint32_t id = result.count++;
    std::queue<NodeId> queue;
    result.label[start] = id;
    queue.push(start);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop();
      for (const WeightedArc& arc : adjacency[u]) {
        if (result.label[arc.to] != kUnlabeled) continue;
        result.label[arc.to] = id;
        queue.push(arc.to);
      }
    }
  }
  return result;
}

ComponentLabels ComponentsWithRemovedEdges(
    const PlanarGraph& graph, const std::vector<bool>& edge_removed) {
  INNET_CHECK(edge_removed.size() == graph.NumEdges());
  ComponentLabels result;
  result.label.assign(graph.NumNodes(), kUnlabeled);
  for (NodeId start = 0; start < graph.NumNodes(); ++start) {
    if (result.label[start] != kUnlabeled) continue;
    uint32_t id = result.count++;
    std::queue<NodeId> queue;
    result.label[start] = id;
    queue.push(start);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop();
      for (const Neighbor& nb : graph.NeighborsOf(u)) {
        if (edge_removed[nb.edge]) continue;
        if (result.label[nb.node] != kUnlabeled) continue;
        result.label[nb.node] = id;
        queue.push(nb.node);
      }
    }
  }
  return result;
}

bool IsConnected(const WeightedAdjacency& adjacency) {
  if (adjacency.empty()) return true;
  return ConnectedComponents(adjacency).count == 1;
}

}  // namespace innet::graph
