#include "graph/dual_graph.h"

#include "geometry/rect.h"
#include "util/logging.h"

namespace innet::graph {

DualGraph::DualGraph(const PlanarGraph& primal) : primal_(&primal) {
  positions_.resize(primal.NumFaces());
  ext_node_ = primal.OuterFace();
  for (FaceId f = 0; f < primal.NumFaces(); ++f) {
    if (f == ext_node_) continue;
    positions_[f] = primal.FacePolygon(f).Centroid();
  }
  // The ext node has no meaningful centroid; park it outside the domain so
  // that diagnostics and plots stay readable.
  geometry::Rect box = geometry::BoundingBox(primal.positions().begin(),
                                             primal.positions().end());
  positions_[ext_node_] =
      geometry::Point(box.max_x + 0.5 * (box.Width() + 1.0), box.Center().y);

  adjacency_.assign(positions_.size(), {});
  for (EdgeId e = 0; e < primal.NumEdges(); ++e) {
    const EdgeRecord& rec = primal.Edge(e);
    INNET_CHECK(rec.left != kInvalidFace && rec.right != kInvalidFace);
    if (rec.left == rec.right) continue;  // Primal bridge: dual self-loop.
    double w = geometry::Distance(positions_[rec.left], positions_[rec.right]);
    adjacency_[rec.left].push_back({rec.right, e, w});
    adjacency_[rec.right].push_back({rec.left, e, w});
  }
}

geometry::Polygon DualGraph::JunctionCell(NodeId primal_node) const {
  std::vector<FaceId> around = primal_->FacesAroundNode(primal_node);
  std::vector<geometry::Point> ring;
  ring.reserve(around.size());
  for (FaceId f : around) ring.push_back(positions_[f]);
  return geometry::Polygon(std::move(ring));
}

}  // namespace innet::graph
