#include "graph/planar_graph.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.h"

namespace innet::graph {

PlanarGraph::PlanarGraph(std::vector<geometry::Point> positions,
                         std::vector<std::pair<NodeId, NodeId>> edges)
    : positions_(std::move(positions)) {
  edges_.reserve(edges.size());
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& [u, v] : edges) {
    INNET_CHECK(u < positions_.size() && v < positions_.size());
    INNET_CHECK(u != v);
    auto key = std::minmax(u, v);
    INNET_CHECK(seen.insert({key.first, key.second}).second);
    EdgeRecord rec;
    rec.u = u;
    rec.v = v;
    edges_.push_back(rec);
  }
  BuildAdjacency();
  BuildFaces();
}

void PlanarGraph::BuildAdjacency() {
  adjacency_.assign(positions_.size(), {});
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    adjacency_[edges_[e].u].push_back({edges_[e].v, e});
    adjacency_[edges_[e].v].push_back({edges_[e].u, e});
  }
  // Rotation system: sort each node's neighbors counter-clockwise by the
  // angle of the outgoing segment.
  for (NodeId n = 0; n < adjacency_.size(); ++n) {
    const geometry::Point& origin = positions_[n];
    std::sort(adjacency_[n].begin(), adjacency_[n].end(),
              [&](const Neighbor& a, const Neighbor& b) {
                double angle_a = geometry::AngleOf(origin, positions_[a.node]);
                double angle_b = geometry::AngleOf(origin, positions_[b.node]);
                if (angle_a != angle_b) return angle_a < angle_b;
                return a.edge < b.edge;
              });
  }
  // Slot of each half-edge within its source's rotation order.
  slot_at_source_.assign(edges_.size() * 2, 0);
  for (NodeId n = 0; n < adjacency_.size(); ++n) {
    for (uint32_t i = 0; i < adjacency_[n].size(); ++i) {
      EdgeId e = adjacency_[n][i].edge;
      uint32_t h = (edges_[e].u == n) ? (e << 1) : ((e << 1) | 1);
      slot_at_source_[h] = i;
    }
  }
}

uint32_t PlanarGraph::NextHalfEdgeInFace(uint32_t h) const {
  // Arrive at b = target(h); the next boundary half-edge leaves b and is the
  // clockwise successor of the reversed half-edge in b's rotation order.
  uint32_t reverse = h ^ 1u;
  NodeId b = HalfEdgeSource(reverse);
  const std::vector<Neighbor>& ring = adjacency_[b];
  uint32_t slot = slot_at_source_[reverse];
  uint32_t degree = static_cast<uint32_t>(ring.size());
  uint32_t next_slot = (slot + degree - 1) % degree;
  EdgeId e = ring[next_slot].edge;
  return (edges_[e].u == b) ? (e << 1) : ((e << 1) | 1);
}

void PlanarGraph::BuildFaces() {
  half_edge_face_.assign(edges_.size() * 2, kInvalidFace);
  faces_.clear();
  for (uint32_t start = 0; start < half_edge_face_.size(); ++start) {
    if (half_edge_face_[start] != kInvalidFace) continue;
    FaceId fid = static_cast<FaceId>(faces_.size());
    FaceRecord face;
    uint32_t h = start;
    do {
      half_edge_face_[h] = fid;
      face.boundary_nodes.push_back(HalfEdgeSource(h));
      face.boundary_edges.push_back(h >> 1);
      h = NextHalfEdgeInFace(h);
      INNET_CHECK(face.boundary_nodes.size() <= 2 * edges_.size());
    } while (h != start);
    // Shoelace over the closed walk (bridges traversed both ways net to 0).
    double twice_area = 0.0;
    size_t len = face.boundary_nodes.size();
    for (size_t i = 0; i < len; ++i) {
      const geometry::Point& a = positions_[face.boundary_nodes[i]];
      const geometry::Point& b =
          positions_[face.boundary_nodes[(i + 1) % len]];
      twice_area += geometry::Cross(a, b);
    }
    face.signed_area = 0.5 * twice_area;
    faces_.push_back(std::move(face));
  }

  // Record left/right faces per edge.
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    edges_[e].left = half_edge_face_[e << 1];
    edges_[e].right = half_edge_face_[(e << 1) | 1];
  }

  // The outer face is the face with the most negative signed area (the
  // clockwise walk around the graph hull). For a connected embedded planar
  // graph there is exactly one face with negative area — except for trees,
  // whose single face nets to zero area.
  outer_face_ = 0;
  for (FaceId f = 1; f < faces_.size(); ++f) {
    if (faces_[f].signed_area < faces_[outer_face_].signed_area) {
      outer_face_ = f;
    }
  }
  INNET_CHECK(faces_.size() == 1 || faces_[outer_face_].signed_area < 0.0);
  faces_[outer_face_].is_outer = true;

  // Euler's formula for connected planar graphs; violated when the input is
  // disconnected or the embedding is inconsistent (crossing edges).
  INNET_CHECK(NumNodes() - NumEdges() + NumFaces() == 2);
}

EdgeId PlanarGraph::EdgeBetween(NodeId u, NodeId v) const {
  // Scan the lower-degree endpoint; planar graphs have small average degree.
  if (adjacency_[u].size() > adjacency_[v].size()) std::swap(u, v);
  for (const Neighbor& nb : adjacency_[u]) {
    if (nb.node == v) return nb.edge;
  }
  return kInvalidEdge;
}

double PlanarGraph::EdgeLength(EdgeId e) const {
  return geometry::Distance(positions_[edges_[e].u], positions_[edges_[e].v]);
}

geometry::Polygon PlanarGraph::FacePolygon(FaceId f) const {
  std::vector<geometry::Point> ring;
  ring.reserve(faces_[f].boundary_nodes.size());
  for (NodeId n : faces_[f].boundary_nodes) ring.push_back(positions_[n]);
  return geometry::Polygon(std::move(ring));
}

std::vector<FaceId> PlanarGraph::FacesAroundNode(NodeId n) const {
  std::vector<FaceId> around;
  around.reserve(adjacency_[n].size());
  for (const Neighbor& nb : adjacency_[n]) {
    EdgeId e = nb.edge;
    uint32_t h = (edges_[e].u == n) ? (e << 1) : ((e << 1) | 1);
    around.push_back(half_edge_face_[h]);
  }
  return around;
}

}  // namespace innet::graph
