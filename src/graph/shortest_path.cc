#include "graph/shortest_path.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>

#include "util/logging.h"
#include "util/rng.h"

namespace innet::graph {

namespace {

struct QueueEntry {
  double dist;
  NodeId node;
  bool operator>(const QueueEntry& o) const { return dist > o.dist; }
};

struct DijkstraState {
  std::vector<double> dist;
  std::vector<NodeId> parent;
  std::vector<EdgeId> parent_edge;
};

// Runs Dijkstra from src; stops early once `target` is settled (pass
// kInvalidNode to settle everything).
DijkstraState RunDijkstra(const WeightedAdjacency& adjacency, NodeId src,
                          NodeId target, const std::vector<bool>* blocked) {
  size_t n = adjacency.size();
  INNET_CHECK(src < n);
  DijkstraState state;
  state.dist.assign(n, std::numeric_limits<double>::infinity());
  state.parent.assign(n, kInvalidNode);
  state.parent_edge.assign(n, kInvalidEdge);
  if (blocked != nullptr) {
    INNET_CHECK(blocked->size() == n);
    INNET_CHECK(!(*blocked)[src]);
  }

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  state.dist[src] = 0.0;
  queue.push({0.0, src});
  while (!queue.empty()) {
    auto [d, u] = queue.top();
    queue.pop();
    if (d > state.dist[u]) continue;
    if (u == target) break;
    for (const WeightedArc& arc : adjacency[u]) {
      if (blocked != nullptr && (*blocked)[arc.to]) continue;
      double candidate = d + arc.weight;
      if (candidate < state.dist[arc.to]) {
        state.dist[arc.to] = candidate;
        state.parent[arc.to] = u;
        state.parent_edge[arc.to] = arc.via;
        queue.push({candidate, arc.to});
      }
    }
  }
  return state;
}

}  // namespace

std::optional<Path> ShortestPath(const WeightedAdjacency& adjacency,
                                 NodeId src, NodeId dst,
                                 const std::vector<bool>* blocked) {
  INNET_CHECK(dst < adjacency.size());
  DijkstraState state = RunDijkstra(adjacency, src, dst, blocked);
  if (!std::isfinite(state.dist[dst])) return std::nullopt;
  Path path;
  path.cost = state.dist[dst];
  for (NodeId cur = dst; cur != src; cur = state.parent[cur]) {
    path.nodes.push_back(cur);
    path.edges.push_back(state.parent_edge[cur]);
  }
  path.nodes.push_back(src);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

std::vector<double> DijkstraDistances(const WeightedAdjacency& adjacency,
                                      NodeId src,
                                      const std::vector<bool>* blocked) {
  return RunDijkstra(adjacency, src, kInvalidNode, blocked).dist;
}

std::vector<uint32_t> BfsHops(const WeightedAdjacency& adjacency, NodeId src) {
  INNET_CHECK(src < adjacency.size());
  std::vector<uint32_t> hops(adjacency.size(),
                             std::numeric_limits<uint32_t>::max());
  std::queue<NodeId> queue;
  hops[src] = 0;
  queue.push(src);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop();
    for (const WeightedArc& arc : adjacency[u]) {
      if (hops[arc.to] != std::numeric_limits<uint32_t>::max()) continue;
      hops[arc.to] = hops[u] + 1;
      queue.push(arc.to);
    }
  }
  return hops;
}

double EstimateAveragePathHops(const WeightedAdjacency& adjacency,
                               size_t num_samples, uint64_t seed) {
  INNET_CHECK(!adjacency.empty());
  util::Rng rng(seed);
  double total = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < num_samples; ++i) {
    NodeId src = static_cast<NodeId>(rng.UniformIndex(adjacency.size()));
    std::vector<uint32_t> hops = BfsHops(adjacency, src);
    NodeId dst = static_cast<NodeId>(rng.UniformIndex(adjacency.size()));
    if (hops[dst] == std::numeric_limits<uint32_t>::max()) continue;
    total += hops[dst];
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace innet::graph
