#include "graph/weighted_adjacency.h"

namespace innet::graph {

WeightedAdjacency EuclideanAdjacency(const PlanarGraph& graph) {
  WeightedAdjacency adjacency(graph.NumNodes());
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    const EdgeRecord& rec = graph.Edge(e);
    double w = graph.EdgeLength(e);
    adjacency[rec.u].push_back({rec.v, e, w});
    adjacency[rec.v].push_back({rec.u, e, w});
  }
  return adjacency;
}

}  // namespace innet::graph
