#include "runtime/batch_query_engine.h"

#include <utility>

#include "forms/region_count.h"
#include "util/timer.h"

namespace innet::runtime {

BatchQueryEngine::BatchQueryEngine(const core::SampledGraph& sampled,
                                   const forms::EdgeCountStore& store,
                                   const BatchEngineOptions& options)
    : sampled_(&sampled),
      store_(&store),
      health_(options.health),
      degraded_options_(options.degraded),
      tracer_(options.tracer),
      owned_registry_(options.registry != nullptr
                          ? nullptr
                          : std::make_unique<obs::MetricsRegistry>()),
      registry_(options.registry != nullptr ? options.registry
                                            : owned_registry_.get()),
      queries_answered_(&registry_->GetCounter(
          "innet_queries_answered",
          "Queries answered by the batch engine")),
      missed_lower_(&registry_->GetCounter(
          "innet_missed_lower",
          "Lower-bound queries with no satisfying sampled face")),
      missed_upper_(&registry_->GetCounter(
          "innet_missed_upper",
          "Upper-bound queries with no satisfying sampled face")),
      degraded_answers_(&registry_->GetCounter(
          "innet_degraded_answers",
          "Queries answered in degraded mode (boundary rerouted around "
          "faults)")),
      health_invalidations_(&registry_->GetCounter(
          "innet_health_invalidations",
          "Boundary-cache flushes triggered by health-generation changes")),
      latency_micros_(&registry_->GetHistogram(
          "innet_query_latency_micros",
          obs::Histogram::LatencyBoundsMicros(),
          "Per-query evaluation latency in microseconds")),
      cache_(options.cache_capacity, options.cache_shards,
             &registry_->GetCounter("innet_cache_hits",
                                    "Boundary-cache lookup hits"),
             &registry_->GetCounter("innet_cache_misses",
                                    "Boundary-cache lookup misses")),
      pool_(options.num_threads) {
  if (health_ != nullptr) {
    last_health_generation_.store(health_->Generation(),
                                  std::memory_order_relaxed);
  }
}

std::shared_ptr<const ResolvedBoundary> BatchQueryEngine::Resolve(
    const core::RangeQuery& query, core::BoundMode bound,
    obs::QueryTrace* trace) {
  RegionSignature key = SignRegion(query.junctions, bound);
  {
    obs::Span span(trace, "cache_lookup");
    if (std::shared_ptr<const ResolvedBoundary> hit = cache_.Lookup(key)) {
      if (trace != nullptr) trace->Annotate("cache_hit", 1.0);
      return hit;
    }
  }
  if (trace != nullptr) trace->Annotate("cache_hit", 0.0);
  obs::Span span(trace, "boundary_resolution");
  auto resolved = std::make_shared<ResolvedBoundary>();
  std::vector<uint32_t> faces =
      bound == core::BoundMode::kLower
          ? sampled_->LowerBoundFaces(query.junctions)
          : sampled_->UpperBoundFaces(query.junctions);
  if (faces.empty()) {
    resolved->missed = true;
  } else if (health_ != nullptr) {
    obs::Span reroute(trace, "degraded_reroute");
    auto degraded = std::make_shared<core::DegradedBoundary>(
        core::ResolveDegradedBoundary(*sampled_, faces, *health_,
                                      degraded_options_));
    resolved->boundary = degraded->boundary;
    resolved->degraded = std::move(degraded);
  } else {
    resolved->boundary = sampled_->BoundaryOfFaces(faces);
  }
  cache_.Insert(key, resolved);
  return resolved;
}

void BatchQueryEngine::SyncHealthGeneration() {
  if (health_ == nullptr) return;
  uint64_t generation = health_->Generation();
  uint64_t previous = last_health_generation_.exchange(
      generation, std::memory_order_relaxed);
  if (previous != generation) {
    cache_.Clear();
    health_invalidations_->Increment();
  }
}

core::QueryAnswer BatchQueryEngine::AnswerOne(const core::RangeQuery& query,
                                              core::CountKind kind,
                                              core::BoundMode bound) {
  std::unique_ptr<obs::QueryTrace> trace =
      tracer_ != nullptr ? tracer_->StartQuery() : nullptr;
  util::Timer timer;
  core::QueryAnswer answer;
  std::shared_ptr<const ResolvedBoundary> resolved =
      Resolve(query, bound, trace.get());
  if (resolved->missed) {
    answer.missed = true;
    (bound == core::BoundMode::kLower ? missed_lower_ : missed_upper_)
        ->Increment();
  } else if (resolved->degraded != nullptr) {
    obs::Span span(trace.get(), "degraded_answer");
    answer = core::AnswerFromDegradedBoundary(*store_, *resolved->degraded,
                                              query, kind, degraded_options_);
    if (answer.degraded) degraded_answers_->Increment();
  } else {
    obs::Span span(trace.get(), "form_integration");
    const core::SampledGraph::RegionBoundary& boundary = resolved->boundary;
    answer.estimate =
        kind == core::CountKind::kStatic
            ? forms::EvaluateStaticCount(*store_, boundary.edges, query.t2)
            : forms::EvaluateTransientCount(*store_, boundary.edges, query.t1,
                                            query.t2);
    answer.interval = forms::CountInterval::Point(answer.estimate);
    answer.nodes_accessed = boundary.sensors.size();
    answer.edges_accessed = boundary.edges.size();
  }
  answer.exec_micros = timer.ElapsedMicros();
  queries_answered_->Increment();
  latency_micros_->Observe(answer.exec_micros);
  if (trace != nullptr) {
    trace->Annotate("estimate", answer.estimate);
    trace->Annotate("missed", answer.missed ? 1.0 : 0.0);
    trace->Annotate("degraded", answer.degraded ? 1.0 : 0.0);
    trace->Annotate("exec_micros", answer.exec_micros);
    tracer_->Finish(std::move(trace));
  }
  return answer;
}

std::vector<core::QueryAnswer> BatchQueryEngine::AnswerBatch(
    const std::vector<core::RangeQuery>& queries, core::CountKind kind,
    core::BoundMode bound) {
  SyncHealthGeneration();
  std::vector<core::QueryAnswer> answers(queries.size());
  pool_.ParallelFor(queries.size(), [&](size_t i) {
    answers[i] = AnswerOne(queries[i], kind, bound);
  });
  return answers;
}

core::QueryAnswer BatchQueryEngine::Answer(const core::RangeQuery& query,
                                           core::CountKind kind,
                                           core::BoundMode bound) {
  SyncHealthGeneration();
  return AnswerOne(query, kind, bound);
}

BatchEngineSnapshot BatchQueryEngine::Snapshot() const {
  BatchEngineSnapshot snap;
  snap.queries_answered = queries_answered_->Value();
  snap.cache_hits = cache_.Hits();
  snap.cache_misses = cache_.Misses();
  snap.missed_lower = missed_lower_->Value();
  snap.missed_upper = missed_upper_->Value();
  snap.degraded_answers = degraded_answers_->Value();
  snap.health_invalidations = health_invalidations_->Value();
  if (latency_micros_->Count() > 0) {
    snap.latency_p50_micros = latency_micros_->Percentile(0.50);
    snap.latency_p95_micros = latency_micros_->Percentile(0.95);
  }
  return snap;
}

void BatchQueryEngine::ResetStats() {
  queries_answered_->Reset();
  missed_lower_->Reset();
  missed_upper_->Reset();
  degraded_answers_->Reset();
  health_invalidations_->Reset();
  latency_micros_->Reset();
  cache_.ResetCounters();
}

}  // namespace innet::runtime
