#include "runtime/batch_query_engine.h"

#include <utility>

#include "forms/region_count.h"
#include "util/stats.h"
#include "util/timer.h"

namespace innet::runtime {

BatchQueryEngine::BatchQueryEngine(const core::SampledGraph& sampled,
                                   const forms::EdgeCountStore& store,
                                   const BatchEngineOptions& options)
    : sampled_(&sampled),
      store_(&store),
      health_(options.health),
      degraded_options_(options.degraded),
      cache_(options.cache_capacity, options.cache_shards),
      pool_(options.num_threads) {
  if (health_ != nullptr) {
    last_health_generation_.store(health_->Generation(),
                                  std::memory_order_relaxed);
  }
}

std::shared_ptr<const ResolvedBoundary> BatchQueryEngine::Resolve(
    const core::RangeQuery& query, core::BoundMode bound) {
  RegionSignature key = SignRegion(query.junctions, bound);
  if (std::shared_ptr<const ResolvedBoundary> hit = cache_.Lookup(key)) {
    return hit;
  }
  auto resolved = std::make_shared<ResolvedBoundary>();
  std::vector<uint32_t> faces =
      bound == core::BoundMode::kLower
          ? sampled_->LowerBoundFaces(query.junctions)
          : sampled_->UpperBoundFaces(query.junctions);
  if (faces.empty()) {
    resolved->missed = true;
  } else if (health_ != nullptr) {
    auto degraded = std::make_shared<core::DegradedBoundary>(
        core::ResolveDegradedBoundary(*sampled_, faces, *health_,
                                      degraded_options_));
    resolved->boundary = degraded->boundary;
    resolved->degraded = std::move(degraded);
  } else {
    resolved->boundary = sampled_->BoundaryOfFaces(faces);
  }
  cache_.Insert(key, resolved);
  return resolved;
}

void BatchQueryEngine::SyncHealthGeneration() {
  if (health_ == nullptr) return;
  uint64_t generation = health_->Generation();
  uint64_t previous = last_health_generation_.exchange(
      generation, std::memory_order_relaxed);
  if (previous != generation) {
    cache_.Clear();
    health_invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
}

core::QueryAnswer BatchQueryEngine::AnswerOne(const core::RangeQuery& query,
                                              core::CountKind kind,
                                              core::BoundMode bound) {
  util::Timer timer;
  core::QueryAnswer answer;
  std::shared_ptr<const ResolvedBoundary> resolved = Resolve(query, bound);
  if (resolved->missed) {
    answer.missed = true;
    (bound == core::BoundMode::kLower ? missed_lower_ : missed_upper_)
        .fetch_add(1, std::memory_order_relaxed);
  } else if (resolved->degraded != nullptr) {
    answer = core::AnswerFromDegradedBoundary(*store_, *resolved->degraded,
                                              query, kind, degraded_options_);
    if (answer.degraded) {
      degraded_answers_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    const core::SampledGraph::RegionBoundary& boundary = resolved->boundary;
    answer.estimate =
        kind == core::CountKind::kStatic
            ? forms::EvaluateStaticCount(*store_, boundary.edges, query.t2)
            : forms::EvaluateTransientCount(*store_, boundary.edges, query.t1,
                                            query.t2);
    answer.interval = forms::CountInterval::Point(answer.estimate);
    answer.nodes_accessed = boundary.sensors.size();
    answer.edges_accessed = boundary.edges.size();
  }
  answer.exec_micros = timer.ElapsedMicros();
  queries_answered_.fetch_add(1, std::memory_order_relaxed);
  return answer;
}

std::vector<core::QueryAnswer> BatchQueryEngine::AnswerBatch(
    const std::vector<core::RangeQuery>& queries, core::CountKind kind,
    core::BoundMode bound) {
  SyncHealthGeneration();
  std::vector<core::QueryAnswer> answers(queries.size());
  pool_.ParallelFor(queries.size(), [&](size_t i) {
    answers[i] = AnswerOne(queries[i], kind, bound);
  });
  // Latency samples are merged once per batch, off the hot path.
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    latency_micros_.reserve(latency_micros_.size() + answers.size());
    for (const core::QueryAnswer& a : answers) {
      latency_micros_.push_back(a.exec_micros);
    }
  }
  return answers;
}

core::QueryAnswer BatchQueryEngine::Answer(const core::RangeQuery& query,
                                           core::CountKind kind,
                                           core::BoundMode bound) {
  SyncHealthGeneration();
  core::QueryAnswer answer = AnswerOne(query, kind, bound);
  std::lock_guard<std::mutex> lock(latency_mutex_);
  latency_micros_.push_back(answer.exec_micros);
  return answer;
}

BatchEngineSnapshot BatchQueryEngine::Snapshot() const {
  BatchEngineSnapshot snap;
  snap.queries_answered = queries_answered_.load(std::memory_order_relaxed);
  snap.cache_hits = cache_.Hits();
  snap.cache_misses = cache_.Misses();
  snap.missed_lower = missed_lower_.load(std::memory_order_relaxed);
  snap.missed_upper = missed_upper_.load(std::memory_order_relaxed);
  snap.degraded_answers = degraded_answers_.load(std::memory_order_relaxed);
  snap.health_invalidations =
      health_invalidations_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(latency_mutex_);
  if (!latency_micros_.empty()) {
    snap.latency_p50_micros = util::Percentile(latency_micros_, 0.50);
    snap.latency_p95_micros = util::Percentile(latency_micros_, 0.95);
  }
  return snap;
}

void BatchQueryEngine::ResetStats() {
  queries_answered_.store(0, std::memory_order_relaxed);
  missed_lower_.store(0, std::memory_order_relaxed);
  missed_upper_.store(0, std::memory_order_relaxed);
  degraded_answers_.store(0, std::memory_order_relaxed);
  health_invalidations_.store(0, std::memory_order_relaxed);
  cache_.ResetCounters();
  std::lock_guard<std::mutex> lock(latency_mutex_);
  latency_micros_.clear();
}

}  // namespace innet::runtime
