#include "runtime/batch_query_engine.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "forms/region_count.h"
#include "obs/flight_recorder.h"
#include "util/logging.h"
#include "util/timer.h"

namespace innet::runtime {

namespace {

// Cost-profile store classification (0 exact / 1 learned), resolved once
// per construction / store swap so AnswerOne never calls Provenance().
uint8_t StoreKindOf(const forms::EdgeCountStore& store) {
  return std::strcmp(store.Provenance().kind, "exact") == 0 ? 0 : 1;
}

}  // namespace

BatchQueryEngine::BatchQueryEngine(const core::SampledGraph& sampled,
                                   const forms::EdgeCountStore& store,
                                   const BatchEngineOptions& options)
    : BatchQueryEngine(sampled, &store, nullptr, options) {}

BatchQueryEngine::BatchQueryEngine(const core::SampledGraph& sampled,
                                   const forms::FrozenStoreHandle& handle,
                                   const BatchEngineOptions& options)
    : BatchQueryEngine(sampled, nullptr, &handle, options) {}

BatchQueryEngine::BatchQueryEngine(const core::SampledGraph& sampled,
                                   const forms::EdgeCountStore* store,
                                   const forms::FrozenStoreHandle* handle,
                                   const BatchEngineOptions& options)
    : sampled_(&sampled),
      store_(store),
      frozen_(store != nullptr
                  ? dynamic_cast<const forms::FrozenTrackingForm*>(store)
                  : nullptr),
      store_handle_(handle),
      health_(options.health),
      degraded_options_(options.degraded),
      tracer_(options.tracer),
      cache_enabled_(options.cache_capacity > 0),
      owned_registry_(options.registry != nullptr
                          ? nullptr
                          : std::make_unique<obs::MetricsRegistry>()),
      registry_(options.registry != nullptr ? options.registry
                                            : owned_registry_.get()),
      queries_answered_(&registry_->GetCounter(
          "innet_queries_answered",
          "Queries answered by the batch engine")),
      missed_lower_(&registry_->GetCounter(
          "innet_missed_lower",
          "Lower-bound queries with no satisfying sampled face")),
      missed_upper_(&registry_->GetCounter(
          "innet_missed_upper",
          "Upper-bound queries with no satisfying sampled face")),
      degraded_answers_(&registry_->GetCounter(
          "innet_degraded_answers",
          "Queries answered in degraded mode (boundary rerouted around "
          "faults)")),
      health_invalidations_(&registry_->GetCounter(
          "innet_health_invalidations",
          "Boundary-cache flushes triggered by health-generation changes")),
      store_invalidations_(&registry_->GetCounter(
          "innet_store_invalidations",
          "Boundary-cache flushes triggered by store-generation swaps")),
      latency_micros_(&registry_->GetHistogram(
          "innet_query_latency_micros",
          obs::Histogram::LatencyBoundsMicros(),
          "Per-query evaluation latency in microseconds")),
      cache_(options.cache_capacity, options.cache_shards,
             &registry_->GetCounter("innet_cache_hits",
                                    "Boundary-cache lookup hits"),
             &registry_->GetCounter("innet_cache_misses",
                                    "Boundary-cache lookup misses")),
      pool_(options.num_threads) {
  if (store_handle_ != nullptr) {
    store_snapshot_ = store_handle_->Acquire();
    INNET_CHECK(store_snapshot_.store != nullptr);
    frozen_ = store_snapshot_.store.get();
    store_ = frozen_;
  }
  digest_ = options.digest;
  slowlog_ = options.slowlog;
  store_kind_ = StoreKindOf(*store_);
  decile_buckets_ =
      obs::RegionDecileBuckets(sampled_->network().mobility().NumNodes());
  if (health_ != nullptr) {
    last_health_generation_.store(health_->Generation(),
                                  std::memory_order_relaxed);
  }
  accuracy_ = options.accuracy;
  shadow_queue_limit_ = options.shadow_queue_limit;
  shadow_dropped_ = &registry_->GetCounter(
      "innet_shadow_dropped",
      "Shadow checks dropped because the shadow queue was at its budget");
  if (accuracy_ != nullptr) {
    shadow_processor_ = std::make_unique<core::UnsampledQueryProcessor>(
        sampled_->network());
    shadow_thread_ = std::thread([this] { ShadowLoop(); });
  }
}

BatchQueryEngine::~BatchQueryEngine() {
  if (shadow_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(shadow_mutex_);
      shadow_stop_ = true;
    }
    shadow_cv_.notify_all();
    shadow_thread_.join();
  }
}

std::shared_ptr<const ResolvedBoundary> BatchQueryEngine::Resolve(
    const core::RangeQuery& query, core::BoundMode bound,
    obs::QueryTrace* trace, bool* was_cache_hit) {
  if (was_cache_hit != nullptr) *was_cache_hit = false;
  RegionSignature key = SignRegion(query.junctions, bound);
  {
    obs::Span span(trace, "cache_lookup");
    if (std::shared_ptr<const ResolvedBoundary> hit = cache_.Lookup(key)) {
      if (trace != nullptr) trace->Annotate("cache_hit", 1.0);
      if (was_cache_hit != nullptr) *was_cache_hit = true;
      return hit;
    }
  }
  if (trace != nullptr) trace->Annotate("cache_hit", 0.0);
  obs::Span span(trace, "boundary_resolution");
  // Cold path: resolve through the calling worker's thread-local workspace,
  // then copy into an OWNED immutable entry — cached boundaries must not
  // alias mutable scratch. The copies are the cold path's only allocations;
  // a warm (cache-hit) query never reaches here.
  auto resolved = std::make_shared<ResolvedBoundary>();
  core::QueryWorkspace& ws = core::LocalWorkspace();
  if (bound == core::BoundMode::kLower) {
    sampled_->LowerBoundFaces(query.junctions, ws);
  } else {
    sampled_->UpperBoundFaces(query.junctions, ws);
  }
  if (ws.faces.empty()) {
    resolved->missed = true;
  } else if (health_ != nullptr) {
    obs::Span reroute(trace, "degraded_reroute");
    auto degraded = std::make_shared<core::DegradedBoundary>(
        core::ResolveDegradedBoundary(*sampled_, ws.faces, *health_,
                                      degraded_options_));
    resolved->boundary = degraded->boundary;
    resolved->degraded = std::move(degraded);
  } else {
    sampled_->BoundaryOfFaces(ws.faces, ws);
    resolved->boundary.edges = ws.boundary_edges;
    resolved->boundary.sensors = ws.boundary_sensors;
  }
  resolved->faces = ws.faces;
  if (frozen_ != nullptr) {
    // Precompute the boundary's stored-timestamp footprint here, on the
    // cold path, so warm cache hits fill their cost profile for free.
    uint64_t timestamps = 0;
    for (const forms::BoundaryEdge& e : resolved->boundary.edges) {
      timestamps += frozen_->EventCount(e.edge, true);
      timestamps += frozen_->EventCount(e.edge, false);
    }
    resolved->stored_timestamps = timestamps;
  }
  cache_.Insert(key, resolved);
  return resolved;
}

void BatchQueryEngine::SyncStoreGeneration() {
  if (store_handle_ == nullptr) return;
  if (store_handle_->Generation() == store_snapshot_.generation) return;
  store_snapshot_ = store_handle_->Acquire();
  frozen_ = store_snapshot_.store.get();
  store_ = frozen_;
  store_kind_ = StoreKindOf(*store_);
  // Conservative flush: no boundary resolved against the previous
  // generation survives the swap, mirroring the health-generation path.
  cache_.Clear();
  store_invalidations_->Increment();
  obs::FlightRecorder::Global().Note(
      "engine", "attach_generation",
      static_cast<double>(store_snapshot_.generation));
}

void BatchQueryEngine::SyncHealthGeneration() {
  if (health_ == nullptr) return;
  uint64_t generation = health_->Generation();
  uint64_t previous = last_health_generation_.exchange(
      generation, std::memory_order_relaxed);
  if (previous != generation) {
    cache_.Clear();
    health_invalidations_->Increment();
  }
}

core::QueryAnswer BatchQueryEngine::AnswerOne(const core::RangeQuery& query,
                                              core::CountKind kind,
                                              core::BoundMode bound,
                                              obs::ExplainRecord* explain) {
  std::unique_ptr<obs::QueryTrace> trace =
      tracer_ != nullptr ? tracer_->StartQuery() : nullptr;
  util::Timer timer;
  core::QueryAnswer answer;
  bool cache_hit = false;
  const bool profiling = digest_ != nullptr || slowlog_ != nullptr;
  std::shared_ptr<const ResolvedBoundary> resolved =
      Resolve(query, bound, trace.get(), &cache_hit);
  // Stage checkpoint for the cost profile — one clock read, taken only
  // when a digest table or slow log is listening AND the resolution did
  // real work. On a cache hit resolution is a hash probe, so charging it
  // zero keeps the warmest path free of the extra clock read.
  double resolve_micros =
      profiling && !cache_hit ? timer.ElapsedMicros() : 0.0;
  if (explain != nullptr) {
    core::FillExplainResolution(*sampled_, query, kind, bound, resolved->faces,
                                *store_, explain);
    explain->cache_used = cache_enabled_;
    explain->cache_hit = cache_hit;
  }
  if (resolved->missed) {
    answer.missed = true;
    (bound == core::BoundMode::kLower ? missed_lower_ : missed_upper_)
        ->Increment();
  } else if (resolved->degraded != nullptr) {
    obs::Span span(trace.get(), "degraded_answer");
    answer = core::AnswerFromDegradedBoundary(*store_, *resolved->degraded,
                                              query, kind, degraded_options_);
    if (answer.degraded) degraded_answers_->Increment();
  } else {
    obs::Span span(trace.get(), "form_integration");
    const core::SampledGraph::RegionBoundary& boundary = resolved->boundary;
    // Fused devirtualized kernels on a frozen store; the virtual per-edge
    // path otherwise. Same arithmetic, bit-identical estimates.
    if (kind == core::CountKind::kStatic) {
      answer.estimate =
          frozen_ != nullptr
              ? forms::EvaluateStaticCount(*frozen_, boundary.edges, query.t2)
              : forms::EvaluateStaticCount(*store_, boundary.edges, query.t2);
    } else {
      answer.estimate =
          frozen_ != nullptr
              ? forms::EvaluateTransientCount(*frozen_, boundary.edges,
                                              query.t1, query.t2)
              : forms::EvaluateTransientCount(*store_, boundary.edges,
                                              query.t1, query.t2);
    }
    answer.interval = forms::CountInterval::Point(answer.estimate);
    answer.nodes_accessed = boundary.sensors.size();
    answer.edges_accessed = boundary.edges.size();
  }
  answer.exec_micros = timer.ElapsedMicros();
  queries_answered_->Increment();
  latency_micros_->Observe(answer.exec_micros);
  if (explain != nullptr) {
    core::FillExplainAnswer(answer, explain);
    if (answer.degraded) explain->path = "degraded";
  }
  if (profiling) {
    // Stack-assembled profile: plain stores plus the precomputed
    // stored_timestamps of the resolution — no allocation, no extra
    // passes on a warm cache hit.
    obs::QueryCostProfile profile;
    profile.kind = kind == core::CountKind::kStatic ? 0 : 1;
    profile.bound = bound == core::BoundMode::kLower ? 0 : 1;
    profile.store_kind = store_kind_;
    profile.path = answer.degraded ? obs::QueryPathKind::kDegraded
                   : !cache_enabled_ ? obs::QueryPathKind::kUncached
                   : cache_hit       ? obs::QueryPathKind::kCacheHit
                                     : obs::QueryPathKind::kCacheMiss;
    profile.region_decile =
        static_cast<uint8_t>(decile_buckets_.Decile(query.junctions.size()));
    profile.missed = answer.missed;
    profile.degraded = answer.degraded;
    profile.faces_resolved = static_cast<uint32_t>(resolved->faces.size());
    profile.region_junctions = query.junctions.size();
    profile.boundary_edges = resolved->boundary.edges.size();
    profile.boundary_sensors = resolved->boundary.sensors.size();
    profile.csr_timestamps = resolved->stored_timestamps;
    if (frozen_ != nullptr) {
      profile.bucket_probes =
          resolved->boundary.edges.size() * 2 *
          (kind == core::CountKind::kTransient ? 2 : 1);
    }
    profile.store_generation = store_snapshot_.generation;
    profile.resolve_nanos = static_cast<uint64_t>(resolve_micros * 1000.0);
    profile.total_nanos =
        static_cast<uint64_t>(answer.exec_micros * 1000.0);
    profile.integrate_nanos =
        profile.total_nanos > profile.resolve_nanos
            ? profile.total_nanos - profile.resolve_nanos
            : 0;
    if (digest_ != nullptr) digest_->Record(profile);
    if (slowlog_ != nullptr && slowlog_->IsSlow(profile) &&
        slowlog_->Admit()) {
      // Slow path: the explain record is assembled lazily, only for the
      // (rate-limited) queries that actually emit a record.
      if (explain != nullptr) {
        slowlog_->Record(profile, *explain);
      } else {
        obs::ExplainRecord record;
        core::FillExplainResolution(*sampled_, query, kind, bound,
                                    resolved->faces, *store_, &record);
        record.cache_used = cache_enabled_;
        record.cache_hit = cache_hit;
        core::FillExplainAnswer(answer, &record);
        if (answer.degraded) record.path = "degraded";
        slowlog_->Record(profile, record);
      }
    }
  }
  if (accuracy_ != nullptr) {
    MaybeEnqueueShadow(query, answer, kind, bound, resolved);
  }
  if (trace != nullptr) {
    trace->Annotate("estimate", answer.estimate);
    trace->Annotate("missed", answer.missed ? 1.0 : 0.0);
    trace->Annotate("degraded", answer.degraded ? 1.0 : 0.0);
    trace->Annotate("exec_micros", answer.exec_micros);
    tracer_->Finish(std::move(trace));
  }
  return answer;
}

void BatchQueryEngine::MaybeEnqueueShadow(
    const core::RangeQuery& query, const core::QueryAnswer& answer,
    core::CountKind kind, core::BoundMode bound,
    std::shared_ptr<const ResolvedBoundary> resolved) {
  if (!accuracy_->ShouldShadow()) return;
  ShadowTask task;
  task.query = query;
  task.approx = answer.estimate;
  task.interval_width = answer.interval.Width();
  task.kind = kind;
  task.bound = bound;
  task.resolved = std::move(resolved);
  bool enqueued = false;
  {
    std::lock_guard<std::mutex> lock(shadow_mutex_);
    if (shadow_queue_.size() < shadow_queue_limit_) {
      shadow_queue_.push_back(std::move(task));
      ++shadow_inflight_;
      enqueued = true;
    }
  }
  if (enqueued) {
    shadow_cv_.notify_one();
  } else {
    shadow_dropped_->Increment();
  }
}

void BatchQueryEngine::ShadowLoop() {
  std::unique_lock<std::mutex> lock(shadow_mutex_);
  for (;;) {
    shadow_cv_.wait(lock, [this] {
      return shadow_stop_ || (!shadow_queue_.empty() && !batch_active_);
    });
    if (shadow_stop_) return;
    ShadowTask task = std::move(shadow_queue_.front());
    shadow_queue_.pop_front();
    lock.unlock();
    RunShadowTask(task);
    lock.lock();
    --shadow_inflight_;
    if (shadow_inflight_ == 0) shadow_drained_cv_.notify_all();
  }
}

void BatchQueryEngine::RunShadowTask(const ShadowTask& task) {
  core::QueryAnswer exact =
      shadow_processor_->Answer(task.query, task.kind);
  size_t region_cells = task.query.junctions.size();
  size_t resolved_cells = 0;
  if (task.resolved != nullptr) {
    for (uint32_t face : task.resolved->faces) {
      resolved_cells += sampled_->FaceSize(face);
    }
  }
  double deadspace =
      region_cells == 0
          ? 0.0
          : std::abs(static_cast<double>(resolved_cells) -
                     static_cast<double>(region_cells)) /
                static_cast<double>(region_cells);
  accuracy_->RecordComparison(task.approx, exact.estimate, region_cells,
                              deadspace, task.interval_width);
}

void BatchQueryEngine::BeginBatch() {
  if (accuracy_ == nullptr) return;
  std::lock_guard<std::mutex> lock(shadow_mutex_);
  batch_active_ = true;
}

void BatchQueryEngine::EndBatch() {
  if (accuracy_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(shadow_mutex_);
    batch_active_ = false;
  }
  shadow_cv_.notify_one();
}

void BatchQueryEngine::FlushShadow() {
  if (accuracy_ == nullptr) return;
  std::unique_lock<std::mutex> lock(shadow_mutex_);
  shadow_cv_.notify_one();
  shadow_drained_cv_.wait(lock, [this] { return shadow_inflight_ == 0; });
}

std::vector<core::QueryAnswer> BatchQueryEngine::AnswerBatch(
    const std::vector<core::RangeQuery>& queries, core::CountKind kind,
    core::BoundMode bound) {
  SyncStoreGeneration();
  SyncHealthGeneration();
  BeginBatch();
  std::vector<core::QueryAnswer> answers(queries.size());
  pool_.ParallelFor(queries.size(), [&](size_t i) {
    answers[i] = AnswerOne(queries[i], kind, bound);
  });
  EndBatch();
  obs::FlightRecorder::Global().Note("engine", "batch_queries",
                                     static_cast<double>(queries.size()));
  return answers;
}

std::vector<core::QueryAnswer> BatchQueryEngine::AnswerBatchExplained(
    const std::vector<core::RangeQuery>& queries, core::CountKind kind,
    core::BoundMode bound, std::vector<obs::ExplainRecord>* explains) {
  SyncStoreGeneration();
  SyncHealthGeneration();
  BeginBatch();
  explains->assign(queries.size(), obs::ExplainRecord{});
  std::vector<core::QueryAnswer> answers(queries.size());
  pool_.ParallelFor(queries.size(), [&](size_t i) {
    answers[i] = AnswerOne(queries[i], kind, bound, &(*explains)[i]);
  });
  EndBatch();
  return answers;
}

core::QueryAnswer BatchQueryEngine::Answer(const core::RangeQuery& query,
                                           core::CountKind kind,
                                           core::BoundMode bound,
                                           obs::ExplainRecord* explain) {
  SyncStoreGeneration();
  SyncHealthGeneration();
  BeginBatch();
  core::QueryAnswer answer = AnswerOne(query, kind, bound, explain);
  EndBatch();
  return answer;
}

BatchEngineSnapshot BatchQueryEngine::Snapshot() const {
  BatchEngineSnapshot snap;
  snap.queries_answered = queries_answered_->Value();
  snap.cache_hits = cache_.Hits();
  snap.cache_misses = cache_.Misses();
  snap.missed_lower = missed_lower_->Value();
  snap.missed_upper = missed_upper_->Value();
  snap.degraded_answers = degraded_answers_->Value();
  snap.health_invalidations = health_invalidations_->Value();
  snap.store_invalidations = store_invalidations_->Value();
  if (latency_micros_->Count() > 0) {
    snap.latency_p50_micros = latency_micros_->Percentile(0.50);
    snap.latency_p95_micros = latency_micros_->Percentile(0.95);
  }
  return snap;
}

void BatchQueryEngine::ResetStats() {
  queries_answered_->Reset();
  missed_lower_->Reset();
  missed_upper_->Reset();
  degraded_answers_->Reset();
  health_invalidations_->Reset();
  store_invalidations_->Reset();
  latency_micros_->Reset();
  cache_.ResetCounters();
}

}  // namespace innet::runtime
