// Crash recovery for durable ingest (docs/FAULTS.md §"Process & storage
// faults").
//
// A durable IngestPipeline (IngestDurability::wal_dir) fsyncs an epoch's
// WAL commit record before publishing the store generation it produced.
// RecoveryManager inverts that: given the WAL directory of a crashed
// process, it rebuilds the store of the LAST DURABLE EPOCH —
//
//   1. load the newest valid snapshot (snap-<epoch>.snap), if any;
//   2. replay the WAL tail past the snapshot's covered event count;
//   3. fold the tail into the snapshot store with one incremental rebuild.
//
// The result is BIT-IDENTICAL to the store an uninterrupted run published
// at that epoch: the frozen CSR content depends only on the final per-slot
// sorted timestamp sequences, which are invariant under epoch partitioning,
// and the bucket index is derived deterministically from them
// (tests/recovery_test.cc proves this per crash point across a seed
// matrix). Invalid snapshots fall back to older ones, then to full-log
// replay — a torn snapshot can cost time, never correctness.
#ifndef INNET_RUNTIME_RECOVERY_H_
#define INNET_RUNTIME_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "forms/frozen_tracking_form.h"
#include "obs/metrics.h"
#include "runtime/ingest_pipeline.h"
#include "util/status.h"

namespace innet::runtime {

struct RecoveryOptions {
  /// WAL directory of the crashed pipeline (IngestDurability::wal_dir).
  std::string wal_dir;
  /// Edge-space size the pipeline was built with; snapshots with a
  /// different slot count are rejected as foreign.
  size_t num_edges = 0;
  /// Metrics sink; nullptr = the process-global registry. Exposes
  /// innet_recovery_replay_events.
  obs::MetricsRegistry* registry = nullptr;
};

/// Everything recovered from the log: the store to serve and the positions
/// a resumed pipeline continues from.
struct RecoveredState {
  std::shared_ptr<const forms::FrozenTrackingForm> store;
  /// Generation the store was published at. 1 when the log holds no
  /// commits — matching the empty generation-1 store every pipeline
  /// publishes at construction.
  uint64_t generation = 1;
  uint64_t durable_epoch = 0;   ///< Last committed WAL epoch (0 = none).
  uint64_t durable_events = 0;  ///< Events covered by committed epochs.
  uint64_t replayed_events = 0;  ///< WAL-tail events folded past snapshot.
  uint64_t snapshot_events = 0;  ///< Events the loaded snapshot covered.
  bool used_snapshot = false;
};

class RecoveryManager {
 public:
  explicit RecoveryManager(RecoveryOptions options);

  /// Rebuilds the last durable state. Fails on unreadable directories or
  /// mid-log corruption (same contract as io::ReplayEventLog); an empty or
  /// missing log recovers to the empty generation-1 store.
  util::StatusOr<RecoveredState> Recover();

  /// Recover() + a pipeline resumed from the result: it serves the
  /// recovered store immediately and appends new epochs to the same WAL.
  /// `pipeline_options.durability.wal_dir` and resume fields are filled in
  /// here; everything else (shards, backpressure, snapshot cadence,
  /// registry) is taken from the caller. When `state_out` is non-null the
  /// recovered state is copied there.
  util::StatusOr<std::unique_ptr<IngestPipeline>> Resume(
      IngestPipelineOptions pipeline_options = {},
      RecoveredState* state_out = nullptr);

 private:
  RecoveryOptions options_;
};

}  // namespace innet::runtime

#endif  // INNET_RUNTIME_RECOVERY_H_
