// Live ingestion with incremental background re-freeze.
//
// The frozen serving path (forms/frozen_tracking_form.h) is a snapshot;
// this pipeline keeps it fresh against a never-ending crossing-event
// stream without ever blocking readers:
//
//   EventReorderBuffer sinks → per-shard append buffers → (epoch close)
//     → freezer thread: scatter→sort into a slot-major EpochDelta,
//       incremental FrozenTrackingForm rebuild (clean slots reused),
//       FrozenStoreHandle::Publish()  — readers swap at their next query.
//
// Epoch lifecycle: Push() appends under a shard mutex (microseconds);
// CloseEpoch() snips every shard's buffer and hands the batch to the
// freezer. An event is owned by exactly one epoch — whichever CloseEpoch
// first swaps out the shard buffer it sits in — so epoch-aligned
// timestamps can never be dropped or double-delivered by the pipeline
// itself (tests/ingest_pipeline_test.cc replays adversarial streams to
// pin this). Close requests coalesce: a slow freezer drains every
// outstanding request in one rebuild.
//
// Durability (optional, IngestDurability): with a WAL directory set, the
// freezer appends each epoch's events to a segmented checksummed log
// (io/event_log.h) and fsyncs a commit record BEFORE publishing, so every
// generation a reader ever observed is recoverable after a crash
// (runtime/recovery.h). Periodic snapshots (io/serialize.h) keep recovery
// to a short tail replay.
//
// Backpressure (optional, max_buffered_events): when the in-memory shard
// buffers hold that many events, Push() applies OverloadPolicy — block
// until the freezer drains, shed the oldest buffered event, or reject the
// new one. Lost events are accounted in overload() and can widen query
// intervals through the degraded-mode machinery (OverloadDegradedOptions).
//
// Reclamation: superseded stores die when the last reader snapshot
// referencing them drops (shared_ptr refcount; see forms/store_handle.h).
#ifndef INNET_RUNTIME_INGEST_PIPELINE_H_
#define INNET_RUNTIME_INGEST_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/event_buffer.h"
#include "core/health.h"
#include "forms/store_handle.h"
#include "io/event_log.h"
#include "mobility/trajectory.h"
#include "obs/metrics.h"

namespace innet::runtime {

/// What Push() does once the in-memory buffers hold
/// IngestPipelineOptions::max_buffered_events events.
enum class OverloadPolicy {
  /// Request an epoch close and block the pusher until the freezer drains.
  /// No events are lost; producers feel the backpressure.
  kBlock,
  /// Drop the oldest buffered event of the incoming event's shard to make
  /// room. Bounded memory, freshest data wins; losses are accounted.
  kShedOldest,
  /// Refuse the incoming event. Bounded memory, history wins.
  kReject,
};

/// Outcome of one Push() under backpressure (always kAccepted when
/// max_buffered_events is 0).
enum class PushResult {
  kAccepted,   ///< Buffered (for kShedOldest: an older event was dropped).
  kShedOldest, ///< Buffered, and the shard's oldest event was shed for it.
  kRejected,   ///< Not buffered (kReject policy at capacity).
};

/// Durability knobs. Active when `wal_dir` is non-empty: the pipeline
/// opens (or resumes) a WAL there and epochs become durable on publish.
struct IngestDurability {
  /// Write-ahead-log directory (created if missing). Empty = durability
  /// off, the pre-existing in-memory-only behavior.
  std::string wal_dir;
  /// Cut a frozen-store snapshot (snap-<epoch>.snap in wal_dir) every N
  /// published epochs so recovery replays only a short WAL tail. 0 = never
  /// snapshot; recovery then replays the whole log.
  size_t snapshot_every_epochs = 0;
  /// WAL segment rotation threshold (io::EventLogOptions::segment_bytes).
  size_t segment_bytes = 8u << 20;
  /// fsync each epoch commit (io::EventLogOptions::fsync_on_commit).
  bool fsync = true;
};

/// Overload losses so far (see OverloadPolicy). The lost-time bounds tell
/// the degraded machinery WHICH part of the timeline is untrustworthy.
struct IngestOverloadReport {
  uint64_t shed_events = 0;      ///< Oldest-dropped under kShedOldest.
  uint64_t rejected_events = 0;  ///< Refused under kReject.
  /// Timestamp range of lost events (min > max when nothing was lost).
  double lost_min_time = std::numeric_limits<double>::infinity();
  double lost_max_time = -std::numeric_limits<double>::infinity();

  uint64_t Lost() const { return shed_events + rejected_events; }
};

/// IngestPipeline construction knobs.
struct IngestPipelineOptions {
  /// Append-buffer shards (rounded up to a power of two). More shards =
  /// less Push() contention; one is fine for a single-writer stream.
  size_t shards = 4;
  /// Auto-close an epoch once this many events have been buffered since
  /// the last close. 0 = epochs close only on explicit CloseEpoch().
  size_t epoch_event_target = 0;
  /// Bound on events held in shard buffers before OverloadPolicy applies.
  /// 0 = unbounded (no backpressure).
  size_t max_buffered_events = 0;
  /// Behavior at the max_buffered_events bound.
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  /// Durability; see IngestDurability.
  IngestDurability durability;
  /// Recovery seeding (runtime::RecoveryManager::Resume): when set, the
  /// pipeline starts serving `resume_store` at `resume_generation` instead
  /// of publishing a fresh empty store as generation 1, and a WAL opened in
  /// durability.wal_dir continues the recovered epoch sequence.
  std::shared_ptr<const forms::FrozenTrackingForm> resume_store;
  uint64_t resume_generation = 0;
  /// Metrics sink; nullptr = the process-global registry.
  obs::MetricsRegistry* registry = nullptr;
};

/// Concurrent ingest front-end over a FrozenStoreHandle. Push() is safe
/// from many threads; one background freezer thread rebuilds and publishes.
/// The constructor publishes an empty store (generation 1) so handle-mode
/// readers always have something to serve.
class IngestPipeline {
 public:
  /// `num_edges` must cover every edge the stream can mention (for a
  /// deployment this is SensorNetwork::TotalEdgeSpace()).
  explicit IngestPipeline(size_t num_edges,
                         IngestPipelineOptions options = {});

  /// Drains: closes a final epoch over any buffered events, waits for the
  /// freezer to publish it, and joins the thread. Callers must stop
  /// pushing first — see MakeSink() for the sink-lifetime contract.
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// The published-store handle readers attach to (SampledQueryProcessor /
  /// BatchQueryEngine handle-mode constructors).
  const forms::FrozenStoreHandle& handle() const { return handle_; }

  /// Buffers one in-order crossing event. Thread-safe. The return value
  /// reports the backpressure outcome; without max_buffered_events it is
  /// always kAccepted and callers may ignore it.
  PushResult Push(const mobility::CrossingEvent& event);

  /// Adapter for EventReorderBuffer: the buffer reorders, the pipeline
  /// ingests whatever the buffer releases.
  ///
  /// LIFETIME: the returned sink captures `this` unowned. It must not be
  /// invoked at or after the start of ~IngestPipeline() — destroy (or stop
  /// flushing into) every EventReorderBuffer holding the sink BEFORE the
  /// pipeline, exactly like handing out a raw pointer. The destructor
  /// cannot detect a concurrent Push(); that race is a use-after-free
  /// (tests/ingest_pipeline_test.cc pins the correct teardown order under
  /// TSan).
  core::EventReorderBuffer::Sink MakeSink() {
    return [this](const mobility::CrossingEvent& e) { Push(e); };
  }

  /// Requests an asynchronous epoch close; returns a ticket for
  /// WaitForTicket(). Multiple outstanding requests coalesce into one
  /// rebuild.
  uint64_t CloseEpoch();

  /// Blocks until the freezer has published (or skipped, when empty) every
  /// epoch up to `ticket`. `ticket` must have been returned by CloseEpoch()
  /// on this pipeline: waiting on a never-issued ticket is a programming
  /// error and CHECK-fails instead of blocking forever.
  void WaitForTicket(uint64_t ticket);

  /// Synchronous close: every event pushed before this call is queryable
  /// through handle() when it returns — and, with durability on, durable
  /// in the WAL.
  void CloseEpochAndWait() { WaitForTicket(CloseEpoch()); }

  /// Events accepted by Push() so far (excludes rejected; includes events
  /// later shed by kShedOldest).
  uint64_t EventsIngested() const {
    return events_total_.load(std::memory_order_relaxed);
  }

  /// Epochs that actually published a new store (empty closes are skipped
  /// and do not bump the store generation).
  uint64_t EpochsPublished() const {
    return epochs_published_.load(std::memory_order_relaxed);
  }

  /// Overload losses so far. Thread-safe snapshot.
  IngestOverloadReport overload() const;

  /// Seconds since the last store publish (construction counts as a
  /// publish). This is the serving staleness a /readyz probe or the
  /// `innet_refreeze_staleness_seconds` derived gauge reports: a healthy
  /// live pipeline keeps it near its epoch cadence, a wedged freezer lets
  /// it grow without bound.
  double SecondsSinceLastPublish() const;

  /// Folds overload losses into degraded-mode options: lost events are
  /// indistinguishable from healthy-sensor message loss, so the loss
  /// fraction lost/(accepted+lost) raises DegradedOptions::drop_rate_bound
  /// and every interval served from this store widens accordingly
  /// (core::AnswerFromDegradedBoundary). Returns `base` unchanged when
  /// nothing was lost.
  core::DegradedOptions OverloadDegradedOptions(
      core::DegradedOptions base = {}) const;

 private:
  struct Pending {
    uint32_t slot;
    double time;
  };
  struct Shard {
    std::mutex mutex;
    std::vector<Pending> events;
  };

  void FreezerLoop();
  /// Swaps out every shard buffer, appends + commits the epoch to the WAL
  /// (when durable), builds the slot-major delta, rebuilds incrementally,
  /// and publishes. Returns false when the epoch was empty.
  bool RefreezeOnce();
  /// WAL append + fsync'd commit for one snipped epoch. Publishes
  /// `generation` in the commit record. On I/O failure logs ERROR and
  /// disables the WAL (fail-open: serving continues, durability stops).
  void CommitEpochToWal(const std::vector<std::vector<Pending>>& taken,
                        uint64_t generation);
  /// Records one lost event in the overload report.
  void RecordLost(double time, bool rejected);

  size_t num_slots_;
  size_t shard_mask_;
  size_t epoch_event_target_;
  size_t max_buffered_events_;
  OverloadPolicy overload_policy_;
  IngestDurability durability_;
  std::vector<std::unique_ptr<Shard>> shards_;
  forms::FrozenStoreHandle handle_;

  std::atomic<uint64_t> events_total_{0};
  std::atomic<uint64_t> epochs_published_{0};
  std::atomic<uint64_t> pending_since_close_{0};
  std::atomic<uint64_t> buffered_events_{0};
  /// Steady-clock micros of the last publish (see SecondsSinceLastPublish).
  std::atomic<int64_t> last_publish_micros_{0};

  // Durability (freezer thread only, after construction).
  std::unique_ptr<io::EventLogWriter> wal_;
  uint64_t wal_epoch_ = 0;
  size_t epochs_since_snapshot_ = 0;

  // Overload accounting.
  mutable std::mutex overload_mutex_;
  IngestOverloadReport overload_;

  // Freezer coordination: requested_/published_ are close tickets.
  std::mutex state_mutex_;
  std::condition_variable state_cv_;
  uint64_t requested_ = 0;
  uint64_t published_ = 0;
  bool stopping_ = false;
  std::thread freezer_;

  obs::Counter* events_counter_;
  obs::Counter* epochs_counter_;
  obs::Counter* shed_counter_;
  obs::Counter* rejected_counter_;
  obs::Counter* wal_errors_counter_;
  obs::Histogram* refreeze_micros_;
  obs::Gauge* generation_gauge_;
  obs::Gauge* epoch_events_gauge_;
  obs::Gauge* buffered_events_gauge_;
};

}  // namespace innet::runtime

#endif  // INNET_RUNTIME_INGEST_PIPELINE_H_
