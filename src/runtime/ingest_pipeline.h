// Live ingestion with incremental background re-freeze.
//
// The frozen serving path (forms/frozen_tracking_form.h) is a snapshot;
// this pipeline keeps it fresh against a never-ending crossing-event
// stream without ever blocking readers:
//
//   EventReorderBuffer sinks → per-shard append buffers → (epoch close)
//     → freezer thread: scatter→sort into a slot-major EpochDelta,
//       incremental FrozenTrackingForm rebuild (clean slots reused),
//       FrozenStoreHandle::Publish()  — readers swap at their next query.
//
// Epoch lifecycle: Push() appends under a shard mutex (microseconds);
// CloseEpoch() snips every shard's buffer and hands the batch to the
// freezer. An event is owned by exactly one epoch — whichever CloseEpoch
// first swaps out the shard buffer it sits in — so epoch-aligned
// timestamps can never be dropped or double-delivered by the pipeline
// itself (tests/ingest_pipeline_test.cc replays adversarial streams to
// pin this). Close requests coalesce: a slow freezer drains every
// outstanding request in one rebuild.
//
// Reclamation: superseded stores die when the last reader snapshot
// referencing them drops (shared_ptr refcount; see forms/store_handle.h).
#ifndef INNET_RUNTIME_INGEST_PIPELINE_H_
#define INNET_RUNTIME_INGEST_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/event_buffer.h"
#include "forms/store_handle.h"
#include "mobility/trajectory.h"
#include "obs/metrics.h"

namespace innet::runtime {

/// IngestPipeline construction knobs.
struct IngestPipelineOptions {
  /// Append-buffer shards (rounded up to a power of two). More shards =
  /// less Push() contention; one is fine for a single-writer stream.
  size_t shards = 4;
  /// Auto-close an epoch once this many events have been buffered since
  /// the last close. 0 = epochs close only on explicit CloseEpoch().
  size_t epoch_event_target = 0;
  /// Metrics sink; nullptr = the process-global registry.
  obs::MetricsRegistry* registry = nullptr;
};

/// Concurrent ingest front-end over a FrozenStoreHandle. Push() is safe
/// from many threads; one background freezer thread rebuilds and publishes.
/// The constructor publishes an empty store (generation 1) so handle-mode
/// readers always have something to serve.
class IngestPipeline {
 public:
  /// `num_edges` must cover every edge the stream can mention (for a
  /// deployment this is SensorNetwork::TotalEdgeSpace()).
  explicit IngestPipeline(size_t num_edges,
                         IngestPipelineOptions options = {});

  /// Drains: closes a final epoch over any buffered events, waits for the
  /// freezer to publish it, and joins the thread.
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// The published-store handle readers attach to (SampledQueryProcessor /
  /// BatchQueryEngine handle-mode constructors).
  const forms::FrozenStoreHandle& handle() const { return handle_; }

  /// Buffers one in-order crossing event. Thread-safe.
  void Push(const mobility::CrossingEvent& event);

  /// Adapter for EventReorderBuffer: the buffer reorders, the pipeline
  /// ingests whatever the buffer releases.
  core::EventReorderBuffer::Sink MakeSink() {
    return [this](const mobility::CrossingEvent& e) { Push(e); };
  }

  /// Requests an asynchronous epoch close; returns a ticket for
  /// WaitForTicket(). Multiple outstanding requests coalesce into one
  /// rebuild.
  uint64_t CloseEpoch();

  /// Blocks until the freezer has published (or skipped, when empty) every
  /// epoch up to `ticket`.
  void WaitForTicket(uint64_t ticket);

  /// Synchronous close: every event pushed before this call is queryable
  /// through handle() when it returns.
  void CloseEpochAndWait() { WaitForTicket(CloseEpoch()); }

  /// Events accepted by Push() so far.
  uint64_t EventsIngested() const {
    return events_total_.load(std::memory_order_relaxed);
  }

  /// Epochs that actually published a new store (empty closes are skipped
  /// and do not bump the store generation).
  uint64_t EpochsPublished() const {
    return epochs_published_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    uint32_t slot;
    double time;
  };
  struct Shard {
    std::mutex mutex;
    std::vector<Pending> events;
  };

  void FreezerLoop();
  /// Swaps out every shard buffer, builds the slot-major delta, rebuilds
  /// incrementally, and publishes. Returns false when the epoch was empty.
  bool RefreezeOnce();

  size_t num_slots_;
  size_t shard_mask_;
  size_t epoch_event_target_;
  std::vector<std::unique_ptr<Shard>> shards_;
  forms::FrozenStoreHandle handle_;

  std::atomic<uint64_t> events_total_{0};
  std::atomic<uint64_t> epochs_published_{0};
  std::atomic<uint64_t> pending_since_close_{0};

  // Freezer coordination: requested_/published_ are close tickets.
  std::mutex state_mutex_;
  std::condition_variable state_cv_;
  uint64_t requested_ = 0;
  uint64_t published_ = 0;
  bool stopping_ = false;
  std::thread freezer_;

  obs::Counter* events_counter_;
  obs::Counter* epochs_counter_;
  obs::Histogram* refreeze_micros_;
  obs::Gauge* generation_gauge_;
};

}  // namespace innet::runtime

#endif  // INNET_RUNTIME_INGEST_PIPELINE_H_
