#include "runtime/boundary_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace innet::runtime {

namespace {

// FNV-1a over the junction words, with the bound mode folded into the
// offset basis so the same region under lower vs upper bounds never
// aliases.
uint64_t Fnv1a(const std::vector<graph::NodeId>& junctions, uint64_t basis) {
  uint64_t h = basis;
  for (graph::NodeId n : junctions) {
    h ^= static_cast<uint64_t>(n);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

RegionSignature SignRegion(const std::vector<graph::NodeId>& junctions,
                           core::BoundMode bound) {
  uint64_t salt = bound == core::BoundMode::kLower ? 0xcbf29ce484222325ULL
                                                   : 0x84222325cbf29ce4ULL;
  RegionSignature sig;
  sig.lo = Fnv1a(junctions, salt);
  // Second, independent stream: splitmix-scrambled words seeded with the
  // length so permutations and prefixes separate.
  uint64_t h = SplitMix64(salt ^ junctions.size());
  for (graph::NodeId n : junctions) {
    h = SplitMix64(h ^ (static_cast<uint64_t>(n) + 0x9e3779b97f4a7c15ULL));
  }
  sig.hi = h;
  return sig;
}

BoundaryCache::BoundaryCache(size_t capacity, size_t shards,
                             obs::Counter* hits, obs::Counter* misses)
    : per_shard_capacity_(0),
      shards_(std::max<size_t>(1, shards)),
      hits_(hits),
      misses_(misses) {
  if (capacity > 0) {
    per_shard_capacity_ = (capacity + shards_.size() - 1) / shards_.size();
  }
  if (hits_ == nullptr) {
    owned_hits_ = std::make_unique<obs::Counter>("cache_hits");
    hits_ = owned_hits_.get();
  }
  if (misses_ == nullptr) {
    owned_misses_ = std::make_unique<obs::Counter>("cache_misses");
    misses_ = owned_misses_.get();
  }
}

std::shared_ptr<const ResolvedBoundary> BoundaryCache::Lookup(
    const RegionSignature& key) {
  if (per_shard_capacity_ == 0) {
    misses_->Increment();
    return nullptr;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_->Increment();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_->Increment();
  return it->second->value;
}

void BoundaryCache::Insert(const RegionSignature& key,
                           std::shared_ptr<const ResolvedBoundary> value) {
  if (per_shard_capacity_ == 0) return;
  INNET_CHECK(value != nullptr);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front({key, std::move(value)});
  shard.index[key] = shard.lru.begin();
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
}

void BoundaryCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
  }
}

size_t BoundaryCache::Size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace innet::runtime
