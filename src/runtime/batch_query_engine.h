// Parallel batch query engine.
//
// Serving layer over a frozen deployment: a fixed worker pool answers
// batches of range queries concurrently against one shared SampledGraph and
// EdgeCountStore, with a sharded LRU cache of resolved region boundaries so
// repeated/overlapping queries skip face resolution entirely.
//
// Safety contract (see docs/API.md §"Thread safety"): the graph and store
// must be FROZEN — fully constructed and fully ingested — before the first
// AnswerBatch call. Every store shipped in this repo (TrackingForm,
// learned::BufferedEdgeStore, learned::RollingWindowStore,
// privacy::PrivateEdgeStore) has a pure const read path, so concurrent
// reads are race-free; concurrent mutation is not.
//
// Determinism: for a given batch, estimates and access counts are
// byte-identical whether the batch runs serially, on 8 workers, cache-cold
// or cache-warm — a cached boundary is the same edge sequence a fresh
// resolution produces, and each answer is computed independently from it.
// Only the wall-clock fields differ.
#ifndef INNET_RUNTIME_BATCH_QUERY_ENGINE_H_
#define INNET_RUNTIME_BATCH_QUERY_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/health.h"
#include "core/query.h"
#include "core/query_processor.h"
#include "core/sampled_graph.h"
#include "forms/edge_count_store.h"
#include "obs/accuracy.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/query_cost.h"
#include "obs/query_digest.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "runtime/boundary_cache.h"
#include "util/thread_pool.h"

namespace innet::runtime {

/// Engine construction knobs.
struct BatchEngineOptions {
  /// Worker threads; 0 means serial execution on the calling thread.
  size_t num_threads = 0;

  /// Total boundary-cache entries across all shards; 0 disables caching.
  size_t cache_capacity = 4096;

  /// Lock shards of the boundary cache.
  size_t cache_shards = 16;

  /// Optional health view (docs/FAULTS.md). When set, queries whose
  /// boundary touches edges owned by failed sensors are answered in
  /// degraded mode — rerouted around the dead faces with an interval
  /// result — and the boundary cache is invalidated whenever the view's
  /// Generation() changes. Must outlive the engine. The view may be
  /// updated between AnswerBatch calls, but not during one.
  const core::SensorHealthView* health = nullptr;

  /// Slack knobs for degraded answers (ignored without `health`).
  core::DegradedOptions degraded;

  /// Metrics registry backing the engine's counters and latency histogram
  /// (docs/OBSERVABILITY.md). nullptr (default) gives the engine a PRIVATE
  /// registry, keeping Snapshot() strictly per-engine; serving binaries
  /// pass &obs::MetricsRegistry::Global() (as tools/innet_query does) so
  /// the engine's metrics export alongside the rest of the process.
  /// Engines sharing one registry share metric storage — exported values
  /// then aggregate across engines while Snapshot() reads that same
  /// storage, so single-engine processes see identical numbers in both
  /// views. Must outlive the engine when provided.
  obs::MetricsRegistry* registry = nullptr;

  /// Optional per-query stage tracer. When set, every AnswerOne consults
  /// the tracer's sampling knob and sampled queries record their stage
  /// breakdown (cache lookup, boundary resolution, degraded reroute, form
  /// integration). Must outlive the engine.
  obs::Tracer* tracer = nullptr;

  /// Optional online accuracy monitor (docs/OBSERVABILITY.md §"Accuracy &
  /// EXPLAIN"). When set, the monitor's 1-in-N knob selects answered
  /// queries for SHADOW EXECUTION: the same query is re-answered on the
  /// exact unsampled path and the signed relative error lands in the
  /// monitor's histograms. Shadow work runs on a dedicated background
  /// thread that only proceeds while no batch is in flight, so the hot
  /// path pays one queue append per shadowed query and nothing more. Must
  /// outlive the engine.
  obs::AccuracyMonitor* accuracy = nullptr;

  /// Shadow-queue budget: pending shadow checks beyond this are dropped
  /// (counted by `innet_shadow_dropped`) instead of growing without bound
  /// when queries outpace the off-peak shadow capacity.
  size_t shadow_queue_limit = 4096;

  /// Optional query digest table (docs/OBSERVABILITY.md §9). When set,
  /// every answered query's cost profile folds into it — lock-free,
  /// allocation-free, a dozen relaxed adds per query. Must outlive the
  /// engine.
  obs::QueryDigestTable* digest = nullptr;

  /// Optional slow-query log. Fast queries pay one inline threshold
  /// compare; queries crossing it (and admitted by the log's rate limit)
  /// assemble a full ExplainRecord and emit a structured record. Must
  /// outlive the engine.
  obs::SlowQueryLog* slowlog = nullptr;
};

/// Point-in-time engine counters — a compatibility view over the
/// registry-backed metrics (the engine's counters ARE the exported
/// `innet_*` metrics; Snapshot reads the same storage the exporters
/// serialize, so the two agree exactly). Latency percentiles come from the
/// `innet_query_latency_micros` histogram and cover the queries answered
/// since construction (or the last ResetStats); as bucket-interpolated
/// quantiles their error is at most one bucket width.
struct BatchEngineSnapshot {
  uint64_t queries_answered = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Queries that found no satisfying face, per bound mode (§5.5 misses).
  uint64_t missed_lower = 0;
  uint64_t missed_upper = 0;
  /// Queries answered in degraded mode (boundary rerouted around faults).
  uint64_t degraded_answers = 0;
  /// Cache flushes triggered by health-generation changes.
  uint64_t health_invalidations = 0;
  /// Cache flushes triggered by store-generation swaps (handle mode).
  uint64_t store_invalidations = 0;
  double latency_p50_micros = 0.0;
  double latency_p95_micros = 0.0;
};

/// Answers query batches concurrently over one frozen deployment. One
/// engine owns one pool + one cache; AnswerBatch parallelizes WITHIN a
/// batch and must not itself be called concurrently on the same engine.
class BatchQueryEngine {
 public:
  /// Holds references only; `sampled` and `store` must outlive the engine.
  BatchQueryEngine(const core::SampledGraph& sampled,
                   const forms::EdgeCountStore& store,
                   const BatchEngineOptions& options);

  /// Handle mode (live ingestion, runtime::IngestPipeline): the engine
  /// follows the frozen store published through `handle`. Each
  /// AnswerBatch/Answer call checks the handle's generation before fanning
  /// out — on a swap it re-acquires the store and flushes the boundary
  /// cache (counted by `innet_store_invalidations`), so no entry resolved
  /// against generation N is ever served at N+1. A whole batch sees ONE
  /// generation; stores published mid-batch apply from the next call.
  BatchQueryEngine(const core::SampledGraph& sampled,
                   const forms::FrozenStoreHandle& handle,
                   const BatchEngineOptions& options);
  ~BatchQueryEngine();

  /// Answers every query under one (kind, bound) configuration. The result
  /// vector is index-aligned with `queries`.
  std::vector<core::QueryAnswer> AnswerBatch(
      const std::vector<core::RangeQuery>& queries, core::CountKind kind,
      core::BoundMode bound);

  /// AnswerBatch plus per-query provenance: `explains` (non-null) is
  /// resized and filled index-aligned with `queries`. Explain records are
  /// deterministic — identical serially or on 8 workers, cache-cold or
  /// cache-warm.
  std::vector<core::QueryAnswer> AnswerBatchExplained(
      const std::vector<core::RangeQuery>& queries, core::CountKind kind,
      core::BoundMode bound, std::vector<obs::ExplainRecord>* explains);

  /// Single-query convenience going through the same cache + counters.
  /// `explain` (optional) receives the answer's provenance.
  core::QueryAnswer Answer(const core::RangeQuery& query, core::CountKind kind,
                           core::BoundMode bound,
                           obs::ExplainRecord* explain = nullptr);

  /// Blocks until every enqueued shadow check has executed (no-op without
  /// an accuracy monitor). Call between batches or before reading the
  /// monitor; never needed for correctness of the answers themselves.
  void FlushShadow();

  BatchEngineSnapshot Snapshot() const;

  /// Drops every cached boundary (counters are kept).
  void ClearCache() { cache_.Clear(); }

  /// Zeroes counters and latency samples (the cache is kept).
  void ResetStats();

  size_t NumThreads() const { return pool_.NumThreads(); }
  size_t CacheSize() const { return cache_.Size(); }

 private:
  /// One deferred shadow check: the query, the approximate answer it got,
  /// and the configuration to re-execute exactly.
  struct ShadowTask {
    core::RangeQuery query;
    double approx = 0.0;
    double interval_width = 0.0;
    core::CountKind kind = core::CountKind::kStatic;
    core::BoundMode bound = core::BoundMode::kLower;
    /// The resolution the approximate answer used — the shadow thread
    /// derives region size and dead space from it without re-resolving on
    /// the hot path.
    std::shared_ptr<const ResolvedBoundary> resolved;
  };

  /// Cache-through resolution of one query region under `bound`. `trace`
  /// may be null; sampled queries record lookup/resolution spans into it.
  /// `was_cache_hit` (optional) reports whether the lookup hit.
  std::shared_ptr<const ResolvedBoundary> Resolve(
      const core::RangeQuery& query, core::BoundMode bound,
      obs::QueryTrace* trace, bool* was_cache_hit = nullptr);

  core::QueryAnswer AnswerOne(const core::RangeQuery& query,
                              core::CountKind kind, core::BoundMode bound,
                              obs::ExplainRecord* explain = nullptr);

  /// Enqueues a shadow check for an answered query (drops when the queue
  /// is at its budget).
  void MaybeEnqueueShadow(const core::RangeQuery& query,
                          const core::QueryAnswer& answer,
                          core::CountKind kind, core::BoundMode bound,
                          std::shared_ptr<const ResolvedBoundary> resolved);

  /// Background shadow loop: executes queued checks while no batch is in
  /// flight.
  void ShadowLoop();
  void RunShadowTask(const ShadowTask& task);

  /// Marks a batch in flight (shadow thread pauses) / done (it resumes).
  void BeginBatch();
  void EndBatch();

  /// Shared delegate of the public constructors: exactly one of `store` /
  /// `handle` is non-null.
  BatchQueryEngine(const core::SampledGraph& sampled,
                   const forms::EdgeCountStore* store,
                   const forms::FrozenStoreHandle* handle,
                   const BatchEngineOptions& options);

  /// Flushes cached boundaries when the health view's generation moved
  /// since the last call. Invoked once per AnswerBatch/Answer, outside the
  /// worker fan-out.
  void SyncHealthGeneration();

  /// Handle mode: re-acquires the published store and flushes the cache
  /// when the store generation moved. Same call discipline as
  /// SyncHealthGeneration — once per entry point, before the fan-out, so
  /// every worker of a batch reads one consistent store.
  void SyncStoreGeneration();

  const core::SampledGraph* sampled_;
  const forms::EdgeCountStore* store_;
  // Non-null when store_ is a forms::FrozenTrackingForm: form integration
  // then runs the devirtualized fused kernels (docs/PERFORMANCE.md) with
  // bit-identical results.
  const forms::FrozenTrackingForm* frozen_;
  // Handle mode only: the followed handle and the pinned snapshot (keeps
  // the current epoch's store alive while workers read it).
  const forms::FrozenStoreHandle* store_handle_ = nullptr;
  forms::FrozenStoreHandle::Snapshot store_snapshot_;
  const core::SensorHealthView* health_;
  core::DegradedOptions degraded_options_;
  obs::Tracer* tracer_;
  bool cache_enabled_ = false;

  // Cost accounting (options.digest / options.slowlog). store_kind_ and
  // the decile thresholds are profile classification latched at
  // construction (and store swaps) so the warm path never calls
  // Provenance() or divides.
  obs::QueryDigestTable* digest_ = nullptr;
  obs::SlowQueryLog* slowlog_ = nullptr;
  uint8_t store_kind_ = 0;
  obs::RegionDecileBuckets decile_buckets_;

  // Private registry when the options carried none; registry_ points at
  // whichever backs this engine.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;

  // Registry-backed metrics (see docs/OBSERVABILITY.md for the naming
  // scheme). Resolved once at construction; increments are per-thread
  // sharded and contention-free.
  obs::Counter* queries_answered_;
  obs::Counter* missed_lower_;
  obs::Counter* missed_upper_;
  obs::Counter* degraded_answers_;
  obs::Counter* health_invalidations_;
  obs::Counter* store_invalidations_;
  obs::Histogram* latency_micros_;

  BoundaryCache cache_;
  util::ThreadPool pool_;
  std::atomic<uint64_t> last_health_generation_{0};

  // Shadow execution (only active with options.accuracy). The exact
  // processor re-answers selected queries off-peak; shadow_inflight_
  // counts queued + currently executing tasks so FlushShadow can wait for
  // full drain.
  obs::AccuracyMonitor* accuracy_ = nullptr;
  size_t shadow_queue_limit_ = 0;
  obs::Counter* shadow_dropped_ = nullptr;
  std::unique_ptr<core::UnsampledQueryProcessor> shadow_processor_;
  std::mutex shadow_mutex_;
  std::condition_variable shadow_cv_;
  std::condition_variable shadow_drained_cv_;
  std::deque<ShadowTask> shadow_queue_;
  size_t shadow_inflight_ = 0;
  bool shadow_stop_ = false;
  bool batch_active_ = false;
  std::thread shadow_thread_;
};

}  // namespace innet::runtime

#endif  // INNET_RUNTIME_BATCH_QUERY_ENGINE_H_
