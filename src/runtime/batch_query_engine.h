// Parallel batch query engine.
//
// Serving layer over a frozen deployment: a fixed worker pool answers
// batches of range queries concurrently against one shared SampledGraph and
// EdgeCountStore, with a sharded LRU cache of resolved region boundaries so
// repeated/overlapping queries skip face resolution entirely.
//
// Safety contract (see docs/API.md §"Thread safety"): the graph and store
// must be FROZEN — fully constructed and fully ingested — before the first
// AnswerBatch call. Every store shipped in this repo (TrackingForm,
// learned::BufferedEdgeStore, learned::RollingWindowStore,
// privacy::PrivateEdgeStore) has a pure const read path, so concurrent
// reads are race-free; concurrent mutation is not.
//
// Determinism: for a given batch, estimates and access counts are
// byte-identical whether the batch runs serially, on 8 workers, cache-cold
// or cache-warm — a cached boundary is the same edge sequence a fresh
// resolution produces, and each answer is computed independently from it.
// Only the wall-clock fields differ.
#ifndef INNET_RUNTIME_BATCH_QUERY_ENGINE_H_
#define INNET_RUNTIME_BATCH_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/health.h"
#include "core/query.h"
#include "core/sampled_graph.h"
#include "forms/edge_count_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/boundary_cache.h"
#include "util/thread_pool.h"

namespace innet::runtime {

/// Engine construction knobs.
struct BatchEngineOptions {
  /// Worker threads; 0 means serial execution on the calling thread.
  size_t num_threads = 0;

  /// Total boundary-cache entries across all shards; 0 disables caching.
  size_t cache_capacity = 4096;

  /// Lock shards of the boundary cache.
  size_t cache_shards = 16;

  /// Optional health view (docs/FAULTS.md). When set, queries whose
  /// boundary touches edges owned by failed sensors are answered in
  /// degraded mode — rerouted around the dead faces with an interval
  /// result — and the boundary cache is invalidated whenever the view's
  /// Generation() changes. Must outlive the engine. The view may be
  /// updated between AnswerBatch calls, but not during one.
  const core::SensorHealthView* health = nullptr;

  /// Slack knobs for degraded answers (ignored without `health`).
  core::DegradedOptions degraded;

  /// Metrics registry backing the engine's counters and latency histogram
  /// (docs/OBSERVABILITY.md). nullptr (default) gives the engine a PRIVATE
  /// registry, keeping Snapshot() strictly per-engine; serving binaries
  /// pass &obs::MetricsRegistry::Global() (as tools/innet_query does) so
  /// the engine's metrics export alongside the rest of the process.
  /// Engines sharing one registry share metric storage — exported values
  /// then aggregate across engines while Snapshot() reads that same
  /// storage, so single-engine processes see identical numbers in both
  /// views. Must outlive the engine when provided.
  obs::MetricsRegistry* registry = nullptr;

  /// Optional per-query stage tracer. When set, every AnswerOne consults
  /// the tracer's sampling knob and sampled queries record their stage
  /// breakdown (cache lookup, boundary resolution, degraded reroute, form
  /// integration). Must outlive the engine.
  obs::Tracer* tracer = nullptr;
};

/// Point-in-time engine counters — a compatibility view over the
/// registry-backed metrics (the engine's counters ARE the exported
/// `innet_*` metrics; Snapshot reads the same storage the exporters
/// serialize, so the two agree exactly). Latency percentiles come from the
/// `innet_query_latency_micros` histogram and cover the queries answered
/// since construction (or the last ResetStats); as bucket-interpolated
/// quantiles their error is at most one bucket width.
struct BatchEngineSnapshot {
  uint64_t queries_answered = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Queries that found no satisfying face, per bound mode (§5.5 misses).
  uint64_t missed_lower = 0;
  uint64_t missed_upper = 0;
  /// Queries answered in degraded mode (boundary rerouted around faults).
  uint64_t degraded_answers = 0;
  /// Cache flushes triggered by health-generation changes.
  uint64_t health_invalidations = 0;
  double latency_p50_micros = 0.0;
  double latency_p95_micros = 0.0;
};

/// Answers query batches concurrently over one frozen deployment. One
/// engine owns one pool + one cache; AnswerBatch parallelizes WITHIN a
/// batch and must not itself be called concurrently on the same engine.
class BatchQueryEngine {
 public:
  /// Holds references only; `sampled` and `store` must outlive the engine.
  BatchQueryEngine(const core::SampledGraph& sampled,
                   const forms::EdgeCountStore& store,
                   const BatchEngineOptions& options);

  /// Answers every query under one (kind, bound) configuration. The result
  /// vector is index-aligned with `queries`.
  std::vector<core::QueryAnswer> AnswerBatch(
      const std::vector<core::RangeQuery>& queries, core::CountKind kind,
      core::BoundMode bound);

  /// Single-query convenience going through the same cache + counters.
  core::QueryAnswer Answer(const core::RangeQuery& query, core::CountKind kind,
                           core::BoundMode bound);

  BatchEngineSnapshot Snapshot() const;

  /// Drops every cached boundary (counters are kept).
  void ClearCache() { cache_.Clear(); }

  /// Zeroes counters and latency samples (the cache is kept).
  void ResetStats();

  size_t NumThreads() const { return pool_.NumThreads(); }
  size_t CacheSize() const { return cache_.Size(); }

 private:
  /// Cache-through resolution of one query region under `bound`. `trace`
  /// may be null; sampled queries record lookup/resolution spans into it.
  std::shared_ptr<const ResolvedBoundary> Resolve(
      const core::RangeQuery& query, core::BoundMode bound,
      obs::QueryTrace* trace);

  core::QueryAnswer AnswerOne(const core::RangeQuery& query,
                              core::CountKind kind, core::BoundMode bound);

  /// Flushes cached boundaries when the health view's generation moved
  /// since the last call. Invoked once per AnswerBatch/Answer, outside the
  /// worker fan-out.
  void SyncHealthGeneration();

  const core::SampledGraph* sampled_;
  const forms::EdgeCountStore* store_;
  const core::SensorHealthView* health_;
  core::DegradedOptions degraded_options_;
  obs::Tracer* tracer_;

  // Private registry when the options carried none; registry_ points at
  // whichever backs this engine.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;

  // Registry-backed metrics (see docs/OBSERVABILITY.md for the naming
  // scheme). Resolved once at construction; increments are per-thread
  // sharded and contention-free.
  obs::Counter* queries_answered_;
  obs::Counter* missed_lower_;
  obs::Counter* missed_upper_;
  obs::Counter* degraded_answers_;
  obs::Counter* health_invalidations_;
  obs::Histogram* latency_micros_;

  BoundaryCache cache_;
  util::ThreadPool pool_;
  std::atomic<uint64_t> last_health_generation_{0};
};

}  // namespace innet::runtime

#endif  // INNET_RUNTIME_BATCH_QUERY_ENGINE_H_
