#include "runtime/recovery.h"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "forms/tracking_form.h"
#include "io/event_log.h"
#include "io/serialize.h"
#include "util/logging.h"

namespace innet::runtime {

namespace {

// Snapshot files under `dir` (written by IngestPipeline as
// snap-<epoch>.snap), newest first. A missing directory is an empty list.
std::vector<std::pair<uint64_t, std::string>> ListSnapshots(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> snapshots;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return snapshots;
  while (struct dirent* entry = ::readdir(d)) {
    unsigned long long epoch = 0;
    int consumed = 0;
    if (std::sscanf(entry->d_name, "snap-%16llu.snap%n", &epoch, &consumed) ==
            1 &&
        entry->d_name[consumed] == '\0') {
      snapshots.emplace_back(epoch, dir + "/" + entry->d_name);
    }
  }
  ::closedir(d);
  std::sort(snapshots.rbegin(), snapshots.rend());
  return snapshots;
}

// Scatter-sorts WAL-tail events into one slot-major EpochDelta — the exact
// transform the ingest freezer applies per epoch. Folding the WHOLE tail as
// one delta is bit-identical to replaying it epoch by epoch: the final CSR
// content depends only on the final per-slot sorted sequences, which are
// invariant under epoch partitioning.
forms::EpochDelta BuildTailDelta(
    const std::vector<mobility::CrossingEvent>& events, size_t num_slots) {
  forms::EpochDelta delta;
  delta.offsets.assign(num_slots + 1, 0);
  for (const mobility::CrossingEvent& e : events) {
    size_t slot = forms::FrozenTrackingForm::Slot(e.edge, e.forward);
    INNET_CHECK(slot < num_slots);
    ++delta.offsets[slot + 1];
  }
  for (size_t s = 0; s < num_slots; ++s) {
    delta.offsets[s + 1] += delta.offsets[s];
  }
  delta.times.resize(events.size());
  std::vector<uint64_t> cursor(delta.offsets.begin(), delta.offsets.end() - 1);
  for (const mobility::CrossingEvent& e : events) {
    size_t slot = forms::FrozenTrackingForm::Slot(e.edge, e.forward);
    delta.times[cursor[slot]++] = e.time;
  }
  for (size_t s = 0; s < num_slots; ++s) {
    double* begin = delta.times.data() + delta.offsets[s];
    double* end = delta.times.data() + delta.offsets[s + 1];
    if (!std::is_sorted(begin, end)) std::sort(begin, end);
  }
  return delta;
}

}  // namespace

RecoveryManager::RecoveryManager(RecoveryOptions options)
    : options_(std::move(options)) {
  INNET_CHECK(options_.num_edges > 0);
}

util::StatusOr<RecoveredState> RecoveryManager::Recover() {
  size_t num_slots = 2 * options_.num_edges;
  obs::MetricsRegistry& registry = options_.registry
                                       ? *options_.registry
                                       : obs::MetricsRegistry::Global();
  obs::Counter& replay_counter = registry.GetCounter(
      "innet_recovery_replay_events",
      "WAL-tail events replayed past the snapshot during recovery");

  // Newest valid snapshot wins; an unreadable or foreign one falls back to
  // the next — a damaged snapshot costs replay time, never correctness.
  std::shared_ptr<const forms::FrozenTrackingForm> base;
  io::FrozenSnapshotMeta snapshot_meta;
  bool used_snapshot = false;
  for (const auto& [epoch, path] : ListSnapshots(options_.wal_dir)) {
    util::StatusOr<io::LoadedFrozenSnapshot> loaded =
        io::LoadFrozenSnapshot(path);
    if (!loaded.ok()) {
      INNET_LOG(WARN) << "ignoring unusable snapshot " << path << ": "
                      << loaded.status().message();
      continue;
    }
    if (loaded->store.RawOffsets().size() - 1 != num_slots) {
      INNET_LOG(WARN) << "ignoring snapshot " << path
                      << ": slot count mismatch (foreign edge space)";
      continue;
    }
    snapshot_meta = loaded->meta;
    base = std::make_shared<forms::FrozenTrackingForm>(
        std::move(loaded->store));
    used_snapshot = true;
    break;
  }

  util::StatusOr<io::ReplayedEventLog> replay = io::ReplayEventLog(
      options_.wal_dir, used_snapshot ? snapshot_meta.covered_events : 0);
  if (!replay.ok() && used_snapshot) {
    // A snapshot that outruns or contradicts the log means the log lost
    // data behind it; the log is the source of truth, so fall back to a
    // full replay without the snapshot.
    INNET_LOG(WARN) << "snapshot inconsistent with WAL ("
                    << replay.status().message()
                    << "); replaying the full log";
    used_snapshot = false;
    base = nullptr;
    replay = io::ReplayEventLog(options_.wal_dir, 0);
  }
  if (!replay.ok()) {
    if (replay.status().code() == util::StatusCode::kNotFound) {
      // No log at all: recover to the state every fresh pipeline starts
      // from — the empty store at generation 1.
      RecoveredState state;
      forms::TrackingForm empty(options_.num_edges);
      state.store =
          std::make_shared<forms::FrozenTrackingForm>(empty.Freeze());
      return state;
    }
    return replay.status();
  }

  if (base == nullptr) {
    forms::TrackingForm empty(options_.num_edges);
    base = std::make_shared<forms::FrozenTrackingForm>(empty.Freeze());
  }

  RecoveredState state;
  state.durable_epoch = replay->durable_epoch;
  state.durable_events = replay->durable_events;
  state.replayed_events = replay->events.size();
  state.snapshot_events = used_snapshot ? snapshot_meta.covered_events : 0;
  state.used_snapshot = used_snapshot;
  if (!replay->commits.empty()) {
    state.generation = replay->generation;
  } else if (used_snapshot) {
    state.generation = snapshot_meta.generation;
  }

  if (replay->events.empty()) {
    state.store = std::move(base);
  } else {
    forms::EpochDelta delta = BuildTailDelta(replay->events, num_slots);
    state.store =
        std::make_shared<forms::FrozenTrackingForm>(*base, delta);
  }
  replay_counter.Increment(state.replayed_events);
  INNET_LOG(INFO) << "recovered epoch " << state.durable_epoch
                  << " generation " << state.generation << " ("
                  << state.durable_events << " durable events, "
                  << state.replayed_events << " replayed past snapshot)";
  return state;
}

util::StatusOr<std::unique_ptr<IngestPipeline>> RecoveryManager::Resume(
    IngestPipelineOptions pipeline_options, RecoveredState* state_out) {
  util::StatusOr<RecoveredState> recovered = Recover();
  if (!recovered.ok()) return recovered.status();
  if (state_out != nullptr) *state_out = *recovered;
  pipeline_options.durability.wal_dir = options_.wal_dir;
  pipeline_options.resume_store = recovered->store;
  pipeline_options.resume_generation = recovered->generation;
  if (pipeline_options.registry == nullptr) {
    pipeline_options.registry = options_.registry;
  }
  return std::make_unique<IngestPipeline>(options_.num_edges,
                                          pipeline_options);
}

}  // namespace innet::runtime
