#include "runtime/ingest_pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "faults/crash_points.h"
#include "forms/tracking_form.h"
#include "io/serialize.h"
#include "obs/flight_recorder.h"
#include "util/logging.h"

namespace innet::runtime {

namespace {

int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::string SnapshotPath(const std::string& dir, uint64_t epoch) {
  char name[64];
  std::snprintf(name, sizeof(name), "snap-%016llu.snap",
                static_cast<unsigned long long>(epoch));
  return dir + "/" + name;
}

}  // namespace

IngestPipeline::IngestPipeline(size_t num_edges, IngestPipelineOptions options)
    : num_slots_(2 * num_edges),
      epoch_event_target_(options.epoch_event_target),
      max_buffered_events_(options.max_buffered_events),
      overload_policy_(options.overload_policy),
      durability_(options.durability) {
  size_t shards = RoundUpPow2(std::max<size_t>(1, options.shards));
  shard_mask_ = shards - 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }

  obs::MetricsRegistry& registry =
      options.registry ? *options.registry : obs::MetricsRegistry::Global();
  events_counter_ = &registry.GetCounter(
      "innet_ingest_events_total", "Crossing events accepted by Push()");
  epochs_counter_ = &registry.GetCounter(
      "innet_ingest_epochs_total", "Epochs that published a new store");
  shed_counter_ = &registry.GetCounter(
      "innet_ingest_shed_total",
      "Buffered events dropped by OverloadPolicy::kShedOldest");
  rejected_counter_ = &registry.GetCounter(
      "innet_ingest_rejected_total",
      "Pushes refused by OverloadPolicy::kReject");
  wal_errors_counter_ = &registry.GetCounter(
      "innet_wal_errors_total",
      "WAL I/O failures (durability disabled after the first)");
  refreeze_micros_ = &registry.GetHistogram(
      "innet_refreeze_duration_micros", obs::Histogram::DurationBoundsMicros(),
      "Incremental re-freeze wall time per published epoch");
  generation_gauge_ = &registry.GetGauge(
      "innet_store_generation", "Generation of the published frozen store");
  epoch_events_gauge_ = &registry.GetGauge(
      "innet_ingest_epoch_events", "Events in the most recent published epoch");
  buffered_events_gauge_ = &registry.GetGauge(
      "innet_ingest_buffered_events",
      "Events currently buffered awaiting the freezer (tracked only when "
      "max_buffered_events bounds the buffers)");

  if (!durability_.wal_dir.empty()) {
    io::EventLogOptions log_options;
    log_options.segment_bytes = durability_.segment_bytes;
    log_options.fsync_on_commit = durability_.fsync;
    log_options.registry = options.registry;
    util::StatusOr<std::unique_ptr<io::EventLogWriter>> writer =
        io::EventLogWriter::Open(durability_.wal_dir, log_options);
    if (!writer.ok()) {
      INNET_LOG(ERROR) << "cannot open WAL: " << writer.status().message();
    }
    INNET_CHECK(writer.ok());
    wal_ = std::move(*writer);
    wal_epoch_ = wal_->DurableEpoch();
  }

  if (options.resume_store != nullptr) {
    // Recovery seeding: serve the recovered store at its recovered
    // generation; the WAL (scanned above) continues the epoch sequence.
    INNET_CHECK(options.resume_store->RawOffsets().size() - 1 == num_slots_);
    handle_.Restore(options.resume_store, options.resume_generation);
    generation_gauge_->Set(static_cast<double>(options.resume_generation));
    obs::FlightRecorder::Global().Note(
        "store", "restore_generation",
        static_cast<double>(options.resume_generation));
  } else {
    // Publish generation 1 (an empty store) so readers never see a null
    // handle, then start the freezer.
    forms::TrackingForm empty(num_edges);
    handle_.Publish(
        std::make_shared<forms::FrozenTrackingForm>(empty.Freeze()));
    generation_gauge_->Set(1.0);
    obs::FlightRecorder::Global().Note("store", "publish_generation", 1.0);
  }
  last_publish_micros_.store(SteadyMicros(), std::memory_order_relaxed);
  freezer_ = std::thread([this] { FreezerLoop(); });
}

double IngestPipeline::SecondsSinceLastPublish() const {
  int64_t last = last_publish_micros_.load(std::memory_order_relaxed);
  return static_cast<double>(SteadyMicros() - last) * 1e-6;
}

IngestPipeline::~IngestPipeline() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++requested_;  // Final drain of whatever is still buffered.
    stopping_ = true;
  }
  state_cv_.notify_all();
  freezer_.join();
}

void IngestPipeline::RecordLost(double time, bool rejected) {
  (rejected ? rejected_counter_ : shed_counter_)->Increment();
  std::lock_guard<std::mutex> lock(overload_mutex_);
  if (rejected) {
    ++overload_.rejected_events;
  } else {
    ++overload_.shed_events;
  }
  overload_.lost_min_time = std::min(overload_.lost_min_time, time);
  overload_.lost_max_time = std::max(overload_.lost_max_time, time);
}

IngestOverloadReport IngestPipeline::overload() const {
  std::lock_guard<std::mutex> lock(overload_mutex_);
  return overload_;
}

core::DegradedOptions IngestPipeline::OverloadDegradedOptions(
    core::DegradedOptions base) const {
  IngestOverloadReport report = overload();
  uint64_t lost = report.Lost();
  if (lost == 0) return base;
  double accepted =
      static_cast<double>(events_total_.load(std::memory_order_relaxed));
  double rate =
      static_cast<double>(lost) / (accepted + static_cast<double>(lost));
  base.drop_rate_bound = std::max(base.drop_rate_bound, rate);
  return base;
}

PushResult IngestPipeline::Push(const mobility::CrossingEvent& event) {
  size_t slot = forms::FrozenTrackingForm::Slot(event.edge, event.forward);
  INNET_DCHECK(slot < num_slots_);
  Shard& shard = *shards_[static_cast<size_t>(event.edge) & shard_mask_];
  PushResult result = PushResult::kAccepted;

  if (max_buffered_events_ != 0 &&
      buffered_events_.load(std::memory_order_relaxed) >=
          max_buffered_events_) {
    switch (overload_policy_) {
      case OverloadPolicy::kReject:
        RecordLost(event.time, /*rejected=*/true);
        return PushResult::kRejected;
      case OverloadPolicy::kShedOldest: {
        // Make room by dropping the oldest buffered event of this shard
        // (per-slot order is restored by the freezer's sort, so position
        // within the buffer does not matter — age does).
        std::unique_lock<std::mutex> lock(shard.mutex);
        if (!shard.events.empty()) {
          double lost_time = shard.events.front().time;
          shard.events.erase(shard.events.begin());
          lock.unlock();
          buffered_events_.fetch_sub(1, std::memory_order_relaxed);
          RecordLost(lost_time, /*rejected=*/false);
          result = PushResult::kShedOldest;
        }
        break;
      }
      case OverloadPolicy::kBlock: {
        // Ask the freezer to drain and wait until it has. The close request
        // coalesces with any outstanding one; the freezer notifies
        // state_cv_ after snipping the buffers.
        std::unique_lock<std::mutex> lock(state_mutex_);
        ++requested_;
        state_cv_.notify_all();
        state_cv_.wait(lock, [&] {
          return buffered_events_.load(std::memory_order_relaxed) <
                     max_buffered_events_ ||
                 stopping_;
        });
        break;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.events.push_back({static_cast<uint32_t>(slot), event.time});
  }
  // Occupancy is only tracked when a bound is set — the unbounded hot path
  // skips the shared read-modify-write (and the gauge, which would be the
  // same RMW in disguise).
  if (max_buffered_events_ != 0) {
    uint64_t buffered =
        buffered_events_.fetch_add(1, std::memory_order_relaxed) + 1;
    buffered_events_gauge_->Set(static_cast<double>(buffered));
  }
  events_total_.fetch_add(1, std::memory_order_relaxed);
  events_counter_->Increment();
  if (epoch_event_target_ != 0) {
    uint64_t now =
        pending_since_close_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (now >= epoch_event_target_) {
      pending_since_close_.fetch_sub(now, std::memory_order_relaxed);
      CloseEpoch();
    }
  }
  return result;
}

uint64_t IngestPipeline::CloseEpoch() {
  uint64_t ticket;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ticket = ++requested_;
  }
  state_cv_.notify_all();
  return ticket;
}

void IngestPipeline::WaitForTicket(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(state_mutex_);
  // A ticket that was never issued would never be published: waiting on it
  // is a deadlock, not a wait. Fail loudly instead.
  INNET_CHECK(ticket <= requested_ && "ticket was never issued by CloseEpoch");
  state_cv_.wait(lock, [&] { return published_ >= ticket; });
}

void IngestPipeline::FreezerLoop() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  for (;;) {
    state_cv_.wait(lock, [&] { return requested_ > published_ || stopping_; });
    if (requested_ > published_) {
      // Coalesce: one rebuild covers every request made before the shard
      // swap below — their events are all in the buffers we snip.
      uint64_t target = requested_;
      lock.unlock();
      RefreezeOnce();
      lock.lock();
      published_ = target;
      state_cv_.notify_all();
      continue;
    }
    if (stopping_) return;
  }
}

void IngestPipeline::CommitEpochToWal(
    const std::vector<std::vector<Pending>>& taken, uint64_t generation) {
  util::Status status = util::Status::Ok();
  for (const auto& batch : taken) {
    for (const Pending& p : batch) {
      mobility::CrossingEvent event;
      event.edge = static_cast<graph::EdgeId>(p.slot / 2);
      event.forward = (p.slot % 2 == 0);
      event.time = p.time;
      status = wal_->Append(event);
      if (!status.ok()) break;
    }
    if (!status.ok()) break;
  }
  if (status.ok()) {
    status = wal_->CommitEpoch(wal_epoch_ + 1, generation);
  }
  if (!status.ok()) {
    // Fail-open: keep serving from memory, stop claiming durability. A
    // full disk or dead device should degrade the guarantee, not the
    // service; the counter and the ERROR make the degradation loud.
    INNET_LOG(ERROR) << "WAL write failed, disabling durability: "
                     << status.message();
    wal_errors_counter_->Increment();
    obs::FlightRecorder::Global().Note("wal", "error", 1.0);
    wal_.reset();
    return;
  }
  ++wal_epoch_;
}

bool IngestPipeline::RefreezeOnce() {
  auto start = std::chrono::steady_clock::now();

  // Snip every shard's buffer. Each event lands in exactly one taken batch:
  // a concurrent Push() either appended before the swap (this epoch) or
  // appends to the fresh vector (a later epoch).
  std::vector<std::vector<Pending>> taken;
  taken.reserve(shards_.size());
  size_t total = 0;
  for (auto& shard : shards_) {
    std::vector<Pending> batch;
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      batch.swap(shard->events);
    }
    total += batch.size();
    taken.push_back(std::move(batch));
  }
  if (total == 0) return false;
  if (max_buffered_events_ != 0) {
    uint64_t remaining =
        buffered_events_.fetch_sub(total, std::memory_order_relaxed) - total;
    buffered_events_gauge_->Set(static_cast<double>(remaining));
    // Wake kBlock pushers; the lock pairs with their predicate check so the
    // notify cannot slip between check and sleep.
    std::lock_guard<std::mutex> lock(state_mutex_);
    state_cv_.notify_all();
  }

  // Durability BEFORE visibility: the epoch's commit record is fsync'd
  // before readers can observe the generation it publishes, so every
  // generation ever served is recoverable. (A crash in between recovers to
  // a state slightly AHEAD of what was served — durable ⊇ served.)
  uint64_t generation = handle_.Generation() + 1;
  if (wal_ != nullptr) CommitEpochToWal(taken, generation);

  // Scatter: count per slot, prefix-sum into CSR offsets, then place each
  // event. The per-shard order is preserved, so a single in-order stream
  // lands already sorted and the std::sort below is a no-op check.
  forms::EpochDelta delta;
  delta.offsets.assign(num_slots_ + 1, 0);
  for (const auto& batch : taken) {
    for (const Pending& p : batch) ++delta.offsets[p.slot + 1];
  }
  for (size_t s = 0; s < num_slots_; ++s) {
    delta.offsets[s + 1] += delta.offsets[s];
  }
  delta.times.resize(total);
  std::vector<uint64_t> cursor(delta.offsets.begin(), delta.offsets.end() - 1);
  for (const auto& batch : taken) {
    for (const Pending& p : batch) delta.times[cursor[p.slot]++] = p.time;
  }
  // Sort dirty slots that arrived out of order (multiple sinks with skewed
  // watermarks interleave arbitrarily within a slot).
  for (size_t s = 0; s < num_slots_; ++s) {
    double* begin = delta.times.data() + delta.offsets[s];
    double* end = delta.times.data() + delta.offsets[s + 1];
    if (!std::is_sorted(begin, end)) std::sort(begin, end);
  }

  // Incremental rebuild off the reader path, then one pointer swap.
  forms::FrozenStoreHandle::Snapshot prev = handle_.Acquire();
  auto next = std::make_shared<forms::FrozenTrackingForm>(*prev.store, delta);
  INNET_CRASH_POINT("publish:pre-publish");
  uint64_t published_generation = handle_.Publish(next);
  INNET_DCHECK(published_generation == generation);
  (void)published_generation;

  // Periodic snapshot so recovery replays a short tail, not the full log.
  if (wal_ != nullptr && durability_.snapshot_every_epochs > 0 &&
      ++epochs_since_snapshot_ >= durability_.snapshot_every_epochs) {
    io::FrozenSnapshotMeta meta;
    meta.generation = generation;
    meta.covered_epoch = wal_epoch_;
    meta.covered_events = wal_->DurableEvents();
    util::Status status = io::SaveFrozenSnapshot(
        *next, meta, SnapshotPath(durability_.wal_dir, wal_epoch_));
    if (status.ok()) {
      epochs_since_snapshot_ = 0;
    } else {
      INNET_LOG(WARN) << "snapshot failed (recovery will replay more WAL): "
                      << status.message();
    }
  }

  epochs_published_.fetch_add(1, std::memory_order_relaxed);
  epochs_counter_->Increment();
  generation_gauge_->Set(static_cast<double>(generation));
  epoch_events_gauge_->Set(static_cast<double>(total));
  last_publish_micros_.store(SteadyMicros(), std::memory_order_relaxed);
  obs::FlightRecorder::Global().Note("store", "publish_generation",
                                     static_cast<double>(generation));
  refreeze_micros_->Observe(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return true;
}

}  // namespace innet::runtime
