#include "runtime/ingest_pipeline.h"

#include <algorithm>
#include <chrono>

#include "forms/tracking_form.h"
#include "util/logging.h"

namespace innet::runtime {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

IngestPipeline::IngestPipeline(size_t num_edges, IngestPipelineOptions options)
    : num_slots_(2 * num_edges),
      epoch_event_target_(options.epoch_event_target) {
  size_t shards = RoundUpPow2(std::max<size_t>(1, options.shards));
  shard_mask_ = shards - 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }

  obs::MetricsRegistry& registry =
      options.registry ? *options.registry : obs::MetricsRegistry::Global();
  events_counter_ = &registry.GetCounter(
      "innet_ingest_events_total", "Crossing events accepted by Push()");
  epochs_counter_ = &registry.GetCounter(
      "innet_ingest_epochs_total", "Epochs that published a new store");
  refreeze_micros_ = &registry.GetHistogram(
      "innet_refreeze_duration_micros", obs::Histogram::DurationBoundsMicros(),
      "Incremental re-freeze wall time per published epoch");
  generation_gauge_ = &registry.GetGauge(
      "innet_store_generation", "Generation of the published frozen store");

  // Publish generation 1 (an empty store) so readers never see a null
  // handle, then start the freezer.
  forms::TrackingForm empty(num_edges);
  handle_.Publish(std::make_shared<forms::FrozenTrackingForm>(empty.Freeze()));
  generation_gauge_->Set(1.0);
  freezer_ = std::thread([this] { FreezerLoop(); });
}

IngestPipeline::~IngestPipeline() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++requested_;  // Final drain of whatever is still buffered.
    stopping_ = true;
  }
  state_cv_.notify_all();
  freezer_.join();
}

void IngestPipeline::Push(const mobility::CrossingEvent& event) {
  size_t slot = forms::FrozenTrackingForm::Slot(event.edge, event.forward);
  INNET_DCHECK(slot < num_slots_);
  Shard& shard = *shards_[static_cast<size_t>(event.edge) & shard_mask_];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.events.push_back({static_cast<uint32_t>(slot), event.time});
  }
  events_total_.fetch_add(1, std::memory_order_relaxed);
  events_counter_->Increment();
  if (epoch_event_target_ != 0) {
    uint64_t now =
        pending_since_close_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (now >= epoch_event_target_) {
      pending_since_close_.fetch_sub(now, std::memory_order_relaxed);
      CloseEpoch();
    }
  }
}

uint64_t IngestPipeline::CloseEpoch() {
  uint64_t ticket;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ticket = ++requested_;
  }
  state_cv_.notify_all();
  return ticket;
}

void IngestPipeline::WaitForTicket(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(state_mutex_);
  state_cv_.wait(lock, [&] { return published_ >= ticket; });
}

void IngestPipeline::FreezerLoop() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  for (;;) {
    state_cv_.wait(lock, [&] { return requested_ > published_ || stopping_; });
    if (requested_ > published_) {
      // Coalesce: one rebuild covers every request made before the shard
      // swap below — their events are all in the buffers we snip.
      uint64_t target = requested_;
      lock.unlock();
      RefreezeOnce();
      lock.lock();
      published_ = target;
      state_cv_.notify_all();
      continue;
    }
    if (stopping_) return;
  }
}

bool IngestPipeline::RefreezeOnce() {
  auto start = std::chrono::steady_clock::now();

  // Snip every shard's buffer. Each event lands in exactly one taken batch:
  // a concurrent Push() either appended before the swap (this epoch) or
  // appends to the fresh vector (a later epoch).
  std::vector<std::vector<Pending>> taken;
  taken.reserve(shards_.size());
  size_t total = 0;
  for (auto& shard : shards_) {
    std::vector<Pending> batch;
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      batch.swap(shard->events);
    }
    total += batch.size();
    taken.push_back(std::move(batch));
  }
  if (total == 0) return false;

  // Scatter: count per slot, prefix-sum into CSR offsets, then place each
  // event. The per-shard order is preserved, so a single in-order stream
  // lands already sorted and the std::sort below is a no-op check.
  forms::EpochDelta delta;
  delta.offsets.assign(num_slots_ + 1, 0);
  for (const auto& batch : taken) {
    for (const Pending& p : batch) ++delta.offsets[p.slot + 1];
  }
  for (size_t s = 0; s < num_slots_; ++s) {
    delta.offsets[s + 1] += delta.offsets[s];
  }
  delta.times.resize(total);
  std::vector<uint64_t> cursor(delta.offsets.begin(), delta.offsets.end() - 1);
  for (const auto& batch : taken) {
    for (const Pending& p : batch) delta.times[cursor[p.slot]++] = p.time;
  }
  // Sort dirty slots that arrived out of order (multiple sinks with skewed
  // watermarks interleave arbitrarily within a slot).
  for (size_t s = 0; s < num_slots_; ++s) {
    double* begin = delta.times.data() + delta.offsets[s];
    double* end = delta.times.data() + delta.offsets[s + 1];
    if (!std::is_sorted(begin, end)) std::sort(begin, end);
  }

  // Incremental rebuild off the reader path, then one pointer swap.
  forms::FrozenStoreHandle::Snapshot prev = handle_.Acquire();
  auto next = std::make_shared<forms::FrozenTrackingForm>(*prev.store, delta);
  uint64_t generation = handle_.Publish(std::move(next));

  epochs_published_.fetch_add(1, std::memory_order_relaxed);
  epochs_counter_->Increment();
  generation_gauge_->Set(static_cast<double>(generation));
  refreeze_micros_->Observe(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return true;
}

}  // namespace innet::runtime
