// Sharded LRU cache of resolved region boundaries.
//
// Resolving a query against the sampled graph (LowerBoundFaces /
// UpperBoundFaces + BoundaryOfFaces) costs O(#faces + |Q_R| + boundary) per
// query and is identical for every repetition of the same region — the
// dominant redundant work of dashboard/monitoring traffic where many
// clients poll overlapping regions. This cache memoizes the resolved
// boundary keyed by (region signature, bound mode) so repeated queries skip
// resolution entirely and go straight to count evaluation.
//
// Values are shared_ptr<const ...>: a hit hands out a reference to the
// immutable resolved boundary, so eviction never invalidates an in-flight
// evaluation. Sharding keeps lock contention bounded under a worker pool.
#ifndef INNET_RUNTIME_BOUNDARY_CACHE_H_
#define INNET_RUNTIME_BOUNDARY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/degraded.h"
#include "core/query.h"
#include "core/sampled_graph.h"
#include "obs/metrics.h"

namespace innet::runtime {

/// A resolved region: the face-union boundary, or a recorded miss (no face
/// of G̃ satisfied the bound). Immutable once published to the cache.
struct ResolvedBoundary {
  bool missed = false;
  /// Edges arrive sorted by edge id (BoundaryOfFaces' contract) — frozen
  /// CSR slot order — so every kernel pass over a cached boundary streams
  /// the store monotonically.
  core::SampledGraph::RegionBoundary boundary;

  /// The G̃ faces whose union the boundary encloses — kept so a cache hit
  /// explains (obs/explain.h) identically to a fresh resolution.
  std::vector<uint32_t> faces;

  /// Populated only by health-aware engines: the degraded resolution under
  /// the health generation the entry was built for. Entries never outlive a
  /// generation change — BatchQueryEngine clears the cache on transitions.
  std::shared_ptr<const core::DegradedBoundary> degraded;

  /// Stored CSR timestamps under this boundary (both directions of every
  /// boundary edge), precomputed at resolve time on frozen stores so warm
  /// cache hits fill their cost profile (obs/query_cost.h) without an
  /// extra pass. Sound to cache: the engine flushes the cache on every
  /// store-generation swap, so an entry never outlives the store it was
  /// counted against. 0 on virtual (non-frozen) stores.
  uint64_t stored_timestamps = 0;
};

/// 128-bit signature of a query region under one bound mode. Two
/// independent 64-bit hashes over the junction sequence make accidental
/// collisions negligible (~2^-64 per pair) without retaining the junction
/// vector itself.
struct RegionSignature {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const RegionSignature& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

/// Signature of `junctions` under `bound`. The junction sequence produced
/// by SensorNetwork::JunctionsInRect is deterministic for a given rect, so
/// equal rects map to equal signatures.
RegionSignature SignRegion(const std::vector<graph::NodeId>& junctions,
                           core::BoundMode bound);

/// Sharded LRU map from RegionSignature to ResolvedBoundary.
class BoundaryCache {
 public:
  /// `capacity` entries total across `shards` shards (each shard holds
  /// ceil(capacity / shards)). `capacity == 0` disables the cache: Lookup
  /// always misses and Insert is a no-op.
  ///
  /// `hits`/`misses` are the counters the cache increments — typically
  /// registry-backed (`innet_cache_hits`/`innet_cache_misses`) so hit
  /// rates export without extra plumbing. When null the cache owns
  /// private, unexported counters. Must outlive the cache when provided.
  BoundaryCache(size_t capacity, size_t shards,
                obs::Counter* hits = nullptr, obs::Counter* misses = nullptr);

  /// Returns the cached boundary and refreshes its recency, or nullptr.
  std::shared_ptr<const ResolvedBoundary> Lookup(const RegionSignature& key);

  /// Publishes a resolved boundary, evicting the shard's least recently
  /// used entry when full. Racing inserts of the same key are benign (last
  /// write wins; both values are identical by construction).
  void Insert(const RegionSignature& key,
              std::shared_ptr<const ResolvedBoundary> value);

  void Clear();

  /// Zeroes the hit/miss counters (entries are kept). When the counters
  /// are registry-backed this resets the exported metrics too — the
  /// snapshot and the export stay one source of truth.
  void ResetCounters() {
    hits_->Reset();
    misses_->Reset();
  }

  size_t Size() const;
  uint64_t Hits() const { return hits_->Value(); }
  uint64_t Misses() const { return misses_->Value(); }

 private:
  struct Entry {
    RegionSignature key;
    std::shared_ptr<const ResolvedBoundary> value;
  };
  struct SignatureHash {
    size_t operator()(const RegionSignature& s) const {
      return static_cast<size_t>(s.lo ^ (s.hi * 0x9e3779b97f4a7c15ULL));
    }
  };
  struct Shard {
    mutable std::mutex mutex;
    // Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<RegionSignature, std::list<Entry>::iterator,
                       SignatureHash>
        index;
  };

  Shard& ShardFor(const RegionSignature& key) {
    return shards_[key.hi % shards_.size()];
  }

  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  // Fallbacks owned when the caller supplies no registry counters.
  std::unique_ptr<obs::Counter> owned_hits_;
  std::unique_ptr<obs::Counter> owned_misses_;
  obs::Counter* hits_;
  obs::Counter* misses_;
};

}  // namespace innet::runtime

#endif  // INNET_RUNTIME_BOUNDARY_CACHE_H_
