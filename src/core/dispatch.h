// Query dispatch simulation (§4.6): once the perimeter sensors of a region
// are known, the counts can be collected in two ways —
//   1. kServerDirect: the remote query server contacts every perimeter
//      sensor directly and aggregates centrally (many long-distance links,
//      no in-network routing);
//   2. kPerimeterTraversal: the server contacts ONE perimeter sensor; the
//      query then travels sensor-to-sensor along the perimeter, aggregating
//      in-network, and the final count returns to the server (two
//      long-distance links, O(perimeter) short hops).
// "The choice of method depends on the actual cost in the network"; this
// simulator produces the cost terms of that comparison.
#ifndef INNET_CORE_DISPATCH_H_
#define INNET_CORE_DISPATCH_H_

#include <vector>

#include "core/sensor_network.h"
#include "graph/planar_graph.h"

namespace innet::core {

/// The §4.6 communication strategies.
enum class DispatchMode {
  kServerDirect,
  kPerimeterTraversal,
};

const char* DispatchModeName(DispatchMode mode);

/// Cost terms of one dispatch.
struct DispatchCost {
  /// Distinct sensors involved.
  size_t sensors_contacted = 0;
  /// Sensor-to-server round trips (high-power, long-distance radio).
  size_t long_links = 0;
  /// Sensor-to-sensor hops traveled inside the mesh (short-range radio).
  size_t mesh_hops = 0;

  /// Total message count (each long link is a request+reply pair, each mesh
  /// hop one forwarded message).
  size_t Messages() const { return 2 * long_links + mesh_hops; }

  /// Energy proxy: long-distance transmissions cost `long_link_cost` times
  /// a mesh hop (battery-powered sensors, §3.1).
  double Energy(double long_link_cost = 20.0) const {
    return static_cast<double>(mesh_hops) +
           long_link_cost * static_cast<double>(long_links);
  }
};

/// Simulates collecting counts from `perimeter_sensors` (dual node ids, as
/// produced by SampledGraph::BoundaryOfFaces). The traversal mode visits
/// the sensors in angular order around their centroid (the perimeter is a
/// closed boundary, so this closely tracks the physical cycle) and charges
/// hop counts proportional to inter-sensor mesh distance.
DispatchCost SimulateDispatch(const SensorNetwork& network,
                              const std::vector<graph::NodeId>& perimeter_sensors,
                              DispatchMode mode);

}  // namespace innet::core

#endif  // INNET_CORE_DISPATCH_H_
