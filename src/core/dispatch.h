// Query dispatch simulation (§4.6): once the perimeter sensors of a region
// are known, the counts can be collected in two ways —
//   1. kServerDirect: the remote query server contacts every perimeter
//      sensor directly and aggregates centrally (many long-distance links,
//      no in-network routing);
//   2. kPerimeterTraversal: the server contacts ONE perimeter sensor; the
//      query then travels sensor-to-sensor along the perimeter, aggregating
//      in-network, and the final count returns to the server (two
//      long-distance links, O(perimeter) short hops).
// "The choice of method depends on the actual cost in the network"; this
// simulator produces the cost terms of that comparison.
#ifndef INNET_CORE_DISPATCH_H_
#define INNET_CORE_DISPATCH_H_

#include <vector>

#include "core/sensor_network.h"
#include "graph/planar_graph.h"

namespace innet::core {

/// The §4.6 communication strategies.
enum class DispatchMode {
  kServerDirect,
  kPerimeterTraversal,
};

const char* DispatchModeName(DispatchMode mode);

/// Lossy-channel model: per-transmission loss, per-hop timeout, and capped
/// exponential-backoff retransmission (docs/FAULTS.md). A message is
/// attempted up to `1 + max_retries` times; attempt k (k >= 1) that fails
/// waits min(backoff_base_ms * 2^(k-1), backoff_cap_ms) before the next
/// try. The timeout IS the wait that precedes a retransmission, so it is
/// folded into the backoff schedule rather than modeled separately.
struct ChannelModel {
  /// Probability that any single transmission (mesh hop or long link) is
  /// lost. 0 reproduces the ideal-channel behavior exactly.
  double loss_rate = 0.0;
  /// Retransmissions allowed per message beyond the first attempt.
  size_t max_retries = 5;
  /// One short-range mesh-hop transmission time.
  double mesh_hop_ms = 2.0;
  /// One long-distance sensor-to-server transmission time.
  double long_link_ms = 20.0;
  /// First retransmission backoff (doubles per retry, capped below).
  double backoff_base_ms = 4.0;
  double backoff_cap_ms = 64.0;
};

/// Cost terms of one dispatch.
struct DispatchCost {
  /// Distinct sensors involved.
  size_t sensors_contacted = 0;
  /// Sensor-to-server round trips (high-power, long-distance radio).
  size_t long_links = 0;
  /// Sensor-to-sensor hops traveled inside the mesh (short-range radio).
  size_t mesh_hops = 0;

  /// Expected retransmissions beyond the first attempt of each message,
  /// across the whole dispatch (0 on an ideal channel).
  double expected_retransmissions = 0.0;
  /// Probability that EVERY message of the dispatch is delivered within its
  /// retry budget (1 on an ideal channel).
  double delivery_probability = 1.0;
  /// Expected end-to-end latency, including backoff waits. Long links are
  /// contacted in parallel under kServerDirect; the perimeter traversal is
  /// sequential hop by hop.
  double expected_latency_ms = 0.0;

  /// Total first-attempt message count (each long link is a request+reply
  /// pair, each mesh hop one forwarded message).
  size_t Messages() const { return 2 * long_links + mesh_hops; }

  /// Expected transmissions including retransmissions.
  double ExpectedTransmissions() const {
    return static_cast<double>(Messages()) + expected_retransmissions;
  }

  /// Energy proxy: long-distance transmissions cost `long_link_cost` times
  /// a mesh hop (battery-powered sensors, §3.1). Retransmissions are
  /// charged at the blended per-message rate.
  double Energy(double long_link_cost = 20.0) const {
    double base = static_cast<double>(mesh_hops) +
                  long_link_cost * static_cast<double>(long_links);
    size_t messages = Messages();
    if (messages == 0 || expected_retransmissions <= 0.0) return base;
    return base * (1.0 + expected_retransmissions /
                             static_cast<double>(messages));
  }
};

/// Simulates collecting counts from `perimeter_sensors` (dual node ids, as
/// produced by SampledGraph::BoundaryOfFaces). The traversal mode visits
/// the sensors in angular order around their centroid (the perimeter is a
/// closed boundary, so this closely tracks the physical cycle) and charges
/// hop counts proportional to inter-sensor mesh distance.
DispatchCost SimulateDispatch(const SensorNetwork& network,
                              const std::vector<graph::NodeId>& perimeter_sensors,
                              DispatchMode mode);

/// Same dispatch over a lossy channel: the retry/latency fields are filled
/// from the analytic expectation of the truncated-geometric retransmission
/// process (deterministic — no sampling). With channel.loss_rate == 0 the
/// result equals the ideal-channel overload plus pure transmit latency.
DispatchCost SimulateDispatch(const SensorNetwork& network,
                              const std::vector<graph::NodeId>& perimeter_sensors,
                              DispatchMode mode, const ChannelModel& channel);

}  // namespace innet::core

#endif  // INNET_CORE_DISPATCH_H_
