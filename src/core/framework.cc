#include "core/framework.h"

#include "placement/query_adaptive.h"
#include "sampling/samplers.h"
#include "util/logging.h"

namespace innet::core {

Deployment::Deployment(const SensorNetwork& network, SampledGraph graph,
                       const DeploymentOptions& options, double time_scale)
    : graph_(std::move(graph)) {
  size_t num_edges = network.TotalEdgeSpace();
  if (options.store == StoreKind::kExact) {
    exact_store_ = std::make_unique<forms::TrackingForm>(num_edges);
    store_view_ = exact_store_.get();
  } else {
    learned::ModelOptions model_options;
    model_options.time_scale = time_scale;
    model_options.epsilon = options.pla_epsilon;
    learned_store_ = std::make_unique<learned::BufferedEdgeStore>(
        num_edges, options.model_type, options.buffer_capacity,
        model_options);
    store_view_ = learned_store_.get();
  }
  // Replay the event stream into the deployment's store; only monitored
  // edges carry tracking forms.
  for (const mobility::CrossingEvent& event : network.events()) {
    if (!graph_.IsMonitored(event.edge)) continue;
    if (exact_store_ != nullptr) {
      exact_store_->RecordTraversal(event.edge, event.forward, event.time);
    } else {
      learned_store_->RecordTraversal(event.edge, event.forward, event.time);
    }
  }
}

Framework::Framework(const FrameworkOptions& options)
    : options_(options), rng_(options.seed) {
  util::Rng road_rng = rng_.Fork();
  network_ = std::make_unique<SensorNetwork>(
      mobility::GenerateRoadNetwork(options_.road, road_rng));
  util::Rng traffic_rng = rng_.Fork();
  trajectories_ = mobility::GenerateTrajectories(
      network_->mobility(), options_.traffic, traffic_rng);
  network_->IngestTrajectories(trajectories_);
}

Deployment Framework::DeployWithSampler(const sampling::SensorSampler& sampler,
                                        size_t m,
                                        const DeploymentOptions& options,
                                        util::Rng& rng) const {
  std::vector<graph::NodeId> sensors =
      sampler.Select(network_->sensing(), m, rng);
  return DeployFromSensors(std::move(sensors), options);
}

Deployment Framework::DeployFromSensors(std::vector<graph::NodeId> sensors,
                                        const DeploymentOptions& options) const {
  SampledGraph graph =
      SampledGraph::FromSensors(*network_, std::move(sensors), options.graph);
  return Deployment(*network_, std::move(graph), options, Horizon());
}

Deployment Framework::DeployAdaptive(const std::vector<RangeQuery>& history,
                                     size_t m,
                                     const DeploymentOptions& options) const {
  // Convert the sensor budget into the equal in-network wire budget: the
  // number of monitored edges a query-oblivious deployment of m sensors
  // would materialize (its shortest-path relays are free, and so are the
  // adaptive method's boundary relays — §4.5 maps region edges to network
  // paths the same way).
  sampling::KdTreeSampler reference_sampler;
  util::Rng reference_rng(options_.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<graph::NodeId> reference_sensors =
      reference_sampler.Select(network_->sensing(), m, reference_rng);
  SampledGraph reference = SampledGraph::FromSensors(
      *network_, std::move(reference_sensors), options.graph);
  size_t edge_budget = reference.monitored_edges().size();

  std::vector<placement::QueryRegionHistory> regions;
  regions.reserve(history.size());
  for (const RangeQuery& query : history) {
    regions.push_back({query.junctions});
  }
  std::vector<placement::Atom> atoms =
      placement::PartitionIntoAtoms(network_->mobility(), regions);
  placement::AdaptivePlacement placement =
      placement::SelectAtoms(network_->sensing(), atoms, edge_budget);
  SampledGraph graph = SampledGraph::FromMonitoredEdges(
      *network_, placement.monitored_edges, placement.sensor_nodes);
  return Deployment(*network_, std::move(graph), options, Horizon());
}

}  // namespace innet::core
