// Dead-space quantification (§1, §3.1.1): axis-aligned partitions place
// sensors where no road runs or no traffic flows; the planar sensing graph
// assigns sensors to mobility faces, which border roads by construction.
//
// AnalyzeGridDeadSpace evaluates a virtual nx-by-ny grid deployment (one
// sensor per cell, the Grid/kd/Quad style of §2.3): how many cells contain
// no road at all, and how many see zero crossing events over the ingested
// history. AnalyzeSensingDeadSpace reports the same activity measure for
// the dual sensing faces.
#ifndef INNET_CORE_DEAD_SPACE_H_
#define INNET_CORE_DEAD_SPACE_H_

#include <cstddef>

#include "core/sensor_network.h"

namespace innet::core {

/// Dead-space statistics of one partitioning scheme.
struct DeadSpaceReport {
  size_t partitions = 0;      // Cells or faces (one sensor each).
  size_t without_roads = 0;   // No road touches the partition.
  size_t without_traffic = 0; // No crossing event over the whole history.

  double NoRoadFraction() const {
    return partitions == 0
               ? 0.0
               : static_cast<double>(without_roads) /
                     static_cast<double>(partitions);
  }
  double NoTrafficFraction() const {
    return partitions == 0
               ? 0.0
               : static_cast<double>(without_traffic) /
                     static_cast<double>(partitions);
  }
};

/// Virtual axis-aligned grid over the domain. A cell "has a road" when some
/// road segment intersects it; its traffic is the number of crossing events
/// on roads whose midpoint falls inside. Requires ingested trajectories.
DeadSpaceReport AnalyzeGridDeadSpace(const SensorNetwork& network, size_t nx,
                                     size_t ny);

/// The planar sensing graph's partitions: one sensor per mobility face
/// (excluding the outer face). A face's traffic is the number of crossing
/// events on its bordering roads; no face is road-free by construction.
DeadSpaceReport AnalyzeSensingDeadSpace(const SensorNetwork& network);

}  // namespace innet::core

#endif  // INNET_CORE_DEAD_SPACE_H_
