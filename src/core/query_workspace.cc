#include "core/query_workspace.h"

namespace innet::core {

QueryWorkspace& LocalWorkspace() {
  static thread_local QueryWorkspace workspace;
  return workspace;
}

}  // namespace innet::core
