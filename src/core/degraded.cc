#include "core/degraded.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "core/query_workspace.h"
#include "forms/region_count.h"
#include "util/logging.h"

namespace innet::core {

namespace {

bool EdgeIsDead(const SensorNetwork& network, const SensorHealthView& health,
                graph::EdgeId e) {
  graph::NodeId owner = network.EdgeOwner(e);
  return owner != graph::kInvalidNode && health.IsFailed(owner);
}

// One deformation direction: starting from `start`, repeatedly move the
// boundary across dead edges until it is fully healthy. `outward` absorbs
// the exterior face of each dead boundary edge; otherwise the interior face
// is shed. Every distinct dead edge encountered is recorded in `dead_seen`.
struct Deformation {
  std::vector<uint32_t> faces;
  SampledGraph::RegionBoundary boundary;
  size_t faces_changed = 0;
  bool gave_up = false;  // Step cap hit with dead edges still exposed.
};

Deformation Deform(const SampledGraph& sampled, const SensorHealthView& health,
                   const std::vector<uint32_t>& start, bool outward,
                   size_t max_steps,
                   std::unordered_set<graph::EdgeId>* dead_seen,
                   QueryWorkspace& ws) {
  const SensorNetwork& network = sampled.network();
  Deformation result;
  result.faces = start;
  std::vector<char> in_region(sampled.NumFaces(), 0);
  for (uint32_t f : result.faces) in_region[f] = 1;

  // Each round either terminates or strictly grows/shrinks the face set, so
  // the loop runs at most NumFaces rounds; every round is region-local.
  // Per-round boundaries live in the workspace buffers; only the final,
  // fully-healthy boundary is copied into the owned result.
  while (true) {
    sampled.BoundaryOfFaces(result.faces, ws);
    std::vector<uint32_t> flips;
    for (const forms::BoundaryEdge& be : ws.boundary_edges) {
      if (!EdgeIsDead(network, health, be.edge)) continue;
      dead_seen->insert(be.edge);
      const graph::EdgeRecord& rec = network.mobility().Edge(be.edge);
      uint32_t fu = sampled.FaceOfJunction(rec.u);
      uint32_t fv = sampled.FaceOfJunction(rec.v);
      uint32_t inside = in_region[fu] ? fu : fv;
      uint32_t outside = in_region[fu] ? fv : fu;
      flips.push_back(outward ? outside : inside);
    }
    if (flips.empty()) break;
    std::sort(flips.begin(), flips.end());
    flips.erase(std::unique(flips.begin(), flips.end()), flips.end());

    if (max_steps != 0 && result.faces_changed + flips.size() > max_steps) {
      result.gave_up = true;
      break;
    }
    result.faces_changed += flips.size();
    if (outward) {
      for (uint32_t f : flips) {
        in_region[f] = 1;
        result.faces.push_back(f);
      }
    } else {
      for (uint32_t f : flips) in_region[f] = 0;
      std::vector<uint32_t> kept;
      kept.reserve(result.faces.size());
      for (uint32_t f : result.faces) {
        if (in_region[f]) kept.push_back(f);
      }
      result.faces = std::move(kept);
      if (result.faces.empty()) {
        result.boundary = {};
        return result;
      }
    }
  }
  result.boundary.edges = ws.boundary_edges;
  result.boundary.sensors = ws.boundary_sensors;
  return result;
}

// Total crossings (both directions) recorded on `boundary` up to time t.
double BoundaryActivityUpTo(const forms::EdgeCountStore& store,
                            const std::vector<forms::BoundaryEdge>& boundary,
                            double t) {
  double total = 0.0;
  for (const forms::BoundaryEdge& be : boundary) {
    total += store.CountUpTo(be.edge, true, t) +
             store.CountUpTo(be.edge, false, t);
  }
  return total;
}

// Total crossings (both directions) recorded on `boundary` in (t0, t1].
double BoundaryActivityInRange(const forms::EdgeCountStore& store,
                               const std::vector<forms::BoundaryEdge>& boundary,
                               double t0, double t1) {
  double total = 0.0;
  for (const forms::BoundaryEdge& be : boundary) {
    total += store.CountInRange(be.edge, true, t0, t1) +
             store.CountInRange(be.edge, false, t0, t1);
  }
  return total;
}

// Bound on boundary crossings LOST to message drop, given the observed
// (post-drop) activity A: each observed event survived with probability
// 1-p, so E[lost] = A * p / (1 - p). The bound adds a two-sigma binomial
// fluctuation margin plus one event of discreteness headroom — the
// expectation alone misses tail realisations on low-activity boundaries.
double DropSlack(double observed_activity, double drop_rate_bound) {
  if (drop_rate_bound <= 0.0) return 0.0;
  double p = std::min(drop_rate_bound, 0.999);
  double expected = observed_activity * p / (1.0 - p);
  return expected + 2.0 * std::sqrt(expected) + 1.0;
}

// Crossings whose true time may lie on the other side of `t` once clocks
// skew by up to `s` seconds: everything recorded in [t - s, t + s].
double SkewSlack(const forms::EdgeCountStore& store,
                 const std::vector<forms::BoundaryEdge>& boundary, double t,
                 double s) {
  if (s <= 0.0) return 0.0;
  return BoundaryActivityInRange(store, boundary, t - s, t + s);
}

}  // namespace

DegradedBoundary ResolveDegradedBoundary(const SampledGraph& sampled,
                                         const std::vector<uint32_t>& faces,
                                         const SensorHealthView& health,
                                         const DegradedOptions& options) {
  DegradedBoundary result;
  if (faces.empty()) {
    result.missed = true;
    return result;
  }
  const SensorNetwork& network = sampled.network();
  QueryWorkspace& ws = LocalWorkspace();
  sampled.BoundaryOfFaces(faces, ws);

  std::unordered_set<graph::EdgeId> dead_seen;
  for (const forms::BoundaryEdge& be : ws.boundary_edges) {
    if (EdgeIsDead(network, health, be.edge)) dead_seen.insert(be.edge);
  }
  result.dead_boundary_edges = dead_seen.size();
  result.boundary.edges = ws.boundary_edges;
  result.boundary.sensors = ws.boundary_sensors;
  if (dead_seen.empty()) return result;
  result.degraded = true;

  size_t cap = options.max_deformation_faces;
  Deformation outer =
      Deform(sampled, health, faces, /*outward=*/true, cap, &dead_seen, ws);
  Deformation inner =
      Deform(sampled, health, faces, /*outward=*/false, cap, &dead_seen, ws);

  result.absorbed_faces = outer.faces_changed;
  result.shed_faces = inner.faces_changed;
  if (outer.gave_up) {
    // Fall back to the whole domain: its boundary (the ⋆v_ext virtual edges
    // of every gateway) is always healthy and trivially contains the region.
    std::vector<uint32_t> all(sampled.NumFaces());
    for (uint32_t f = 0; f < sampled.NumFaces(); ++f) all[f] = f;
    result.outer = sampled.BoundaryOfFaces(all);
    result.absorbed_faces = all.size() - faces.size();
  } else {
    result.outer = std::move(outer.boundary);
  }
  if (inner.gave_up || inner.faces.empty()) {
    result.inner_empty = true;
    result.shed_faces = faces.size();
  } else {
    result.inner = std::move(inner.boundary);
  }
  result.dead_edges_total = dead_seen.size();
  return result;
}

QueryAnswer AnswerFromDegradedBoundary(const forms::EdgeCountStore& store,
                                       const DegradedBoundary& resolved,
                                       const RangeQuery& query, CountKind kind,
                                       const DegradedOptions& options) {
  QueryAnswer answer;
  if (resolved.missed) {
    answer.missed = true;
    return answer;
  }

  if (!resolved.degraded) {
    // Healthy boundary, but the channel itself may still be lossy: drop and
    // skew slack apply to every answer, not only rerouted ones.
    const SampledGraph::RegionBoundary& boundary = resolved.boundary;
    double slack = 0.0;
    if (kind == CountKind::kStatic) {
      answer.estimate =
          forms::EvaluateStaticCount(store, boundary.edges, query.t2);
      slack = DropSlack(BoundaryActivityUpTo(store, boundary.edges, query.t2),
                        options.drop_rate_bound) +
              SkewSlack(store, boundary.edges, query.t2,
                        options.clock_skew_bound);
    } else {
      answer.estimate = forms::EvaluateTransientCount(store, boundary.edges,
                                                      query.t1, query.t2);
      slack = DropSlack(BoundaryActivityInRange(store, boundary.edges,
                                                query.t1, query.t2),
                        options.drop_rate_bound) +
              SkewSlack(store, boundary.edges, query.t1,
                        options.clock_skew_bound) +
              SkewSlack(store, boundary.edges, query.t2,
                        options.clock_skew_bound);
    }
    answer.interval = {answer.estimate - slack, answer.estimate + slack};
    if (kind == CountKind::kStatic) {
      answer.interval = answer.interval.ClampedBelow(0.0);
    }
    answer.nodes_accessed = boundary.sensors.size();
    answer.edges_accessed = boundary.edges.size();
    return answer;
  }

  answer.degraded = true;
  answer.dead_boundary_edges = resolved.dead_boundary_edges;
  answer.rerouted_faces = resolved.absorbed_faces + resolved.shed_faces;

  const std::vector<forms::BoundaryEdge>& outer = resolved.outer.edges;
  const std::vector<forms::BoundaryEdge>& inner = resolved.inner.edges;
  double p = options.drop_rate_bound;
  double s = options.clock_skew_bound;

  double lo = 0.0;
  double hi = 0.0;
  double slack_lo = 0.0;
  double slack_hi = 0.0;
  if (kind == CountKind::kStatic) {
    // Static occupancy is monotone under region inclusion, so the counts of
    // F- and F+ bracket the fault-free count of F exactly (given healthy
    // data); drop/skew slack covers the healthy channel's own losses.
    hi = forms::EvaluateStaticCount(store, outer, query.t2);
    lo = resolved.inner_empty
             ? 0.0
             : forms::EvaluateStaticCount(store, inner, query.t2);
    if (lo > hi) std::swap(lo, hi);
    slack_hi = DropSlack(BoundaryActivityUpTo(store, outer, query.t2), p) +
               SkewSlack(store, outer, query.t2, s);
    slack_lo =
        resolved.inner_empty
            ? 0.0
            : DropSlack(BoundaryActivityUpTo(store, inner, query.t2), p) +
                  SkewSlack(store, inner, query.t2, s);
  } else {
    // Transient (net change) counts are not monotone in the region; bracket
    // with both deformations and widen by the traffic the dead edges could
    // have carried in the window (expected-rate bound), plus the healthy
    // channel slack. Heuristic rather than exact — see docs/FAULTS.md.
    double c_out =
        forms::EvaluateTransientCount(store, outer, query.t1, query.t2);
    double c_in = resolved.inner_empty
                      ? 0.0
                      : forms::EvaluateTransientCount(store, inner, query.t1,
                                                      query.t2);
    lo = std::min(c_out, c_in);
    hi = std::max(c_out, c_in);
    double dead_traffic = static_cast<double>(resolved.dead_edges_total) *
                          options.dead_edge_rate_bound *
                          (query.t2 - query.t1);
    double channel =
        DropSlack(BoundaryActivityInRange(store, outer, query.t1, query.t2),
                  p) +
        SkewSlack(store, outer, query.t1, s) +
        SkewSlack(store, outer, query.t2, s);
    slack_lo = slack_hi = dead_traffic + channel;
  }

  answer.interval = {lo - slack_lo, hi + slack_hi};
  if (kind == CountKind::kStatic) {
    answer.interval = answer.interval.ClampedBelow(0.0);
  }
  answer.estimate = 0.5 * (lo + hi);

  // Cost accounting: both deformed boundaries are dispatched.
  std::vector<graph::NodeId> sensors = resolved.outer.sensors;
  sensors.insert(sensors.end(), resolved.inner.sensors.begin(),
                 resolved.inner.sensors.end());
  std::sort(sensors.begin(), sensors.end());
  sensors.erase(std::unique(sensors.begin(), sensors.end()), sensors.end());
  answer.nodes_accessed = sensors.size();
  answer.edges_accessed = outer.size() + inner.size();
  return answer;
}

}  // namespace innet::core
