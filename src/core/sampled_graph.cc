#include "core/sampled_graph.h"

#include <algorithm>
#include <set>

#include "geometry/delaunay.h"
#include "graph/connectivity.h"
#include "graph/shortest_path.h"
#include "spatial/kdtree.h"
#include "util/logging.h"

namespace innet::core {

namespace {

// Logical sensor-to-sensor links before path materialization.
std::vector<std::pair<size_t, size_t>> ConnectSensors(
    const std::vector<geometry::Point>& positions,
    const SampledGraphOptions& options) {
  std::vector<std::pair<size_t, size_t>> links;
  if (positions.size() < 2) return links;
  if (options.connectivity == Connectivity::kTriangulation &&
      positions.size() >= 3) {
    geometry::Triangulation tri = geometry::DelaunayTriangulate(positions);
    for (const auto& [a, b] : tri.Edges()) links.emplace_back(a, b);
    if (!links.empty()) return links;
    // Fall through to k-NN for degenerate (collinear) inputs.
  }
  spatial::KdTree index(positions);
  std::set<std::pair<size_t, size_t>> unique;
  size_t k = std::max<size_t>(1, options.knn_k);
  for (size_t i = 0; i < positions.size(); ++i) {
    // k+1 because the query point itself is its own nearest neighbor.
    std::vector<size_t> nearest = index.KNearest(positions[i], k + 1);
    for (size_t j : nearest) {
      if (j == i) continue;
      unique.insert(std::minmax(i, j));
    }
  }
  links.assign(unique.begin(), unique.end());
  return links;
}

}  // namespace

SampledGraph SampledGraph::FromSensors(const SensorNetwork& network,
                                       std::vector<graph::NodeId> sensors,
                                       const SampledGraphOptions& options) {
  const graph::DualGraph& dual = network.sensing();
  std::vector<geometry::Point> positions;
  positions.reserve(sensors.size());
  for (graph::NodeId s : sensors) {
    INNET_CHECK(s < dual.NumNodes() && s != dual.ExtNode());
    positions.push_back(dual.Position(s));
  }

  std::vector<std::pair<size_t, size_t>> links =
      ConnectSensors(positions, options);

  // Materialize each logical link as the shortest sensing-graph path
  // between the two sensors, never routing through the ext node.
  std::vector<bool> blocked(dual.NumNodes(), false);
  blocked[dual.ExtNode()] = true;
  std::vector<bool> monitored(network.mobility().NumEdges(), false);
  for (const auto& [ai, bi] : links) {
    std::optional<graph::Path> path = graph::ShortestPath(
        dual.adjacency(), sensors[ai], sensors[bi], &blocked);
    if (!path.has_value()) continue;  // Sensing graph split by blocking ext.
    for (graph::EdgeId via : path->edges) monitored[via] = true;
  }
  return SampledGraph(network, std::move(sensors), std::move(monitored));
}

SampledGraph SampledGraph::FromMonitoredEdges(
    const SensorNetwork& network, const std::vector<graph::EdgeId>& monitored,
    std::vector<graph::NodeId> comm_sensors) {
  std::vector<bool> mask(network.mobility().NumEdges(), false);
  for (graph::EdgeId e : monitored) {
    INNET_CHECK(e < mask.size());
    mask[e] = true;
  }
  return SampledGraph(network, std::move(comm_sensors), std::move(mask));
}

SampledGraph::SampledGraph(const SensorNetwork& network,
                           std::vector<graph::NodeId> comm_sensors,
                           std::vector<bool> monitored_mask)
    : network_(&network),
      comm_sensors_(std::move(comm_sensors)),
      monitored_mask_(std::move(monitored_mask)) {
  for (graph::EdgeId e = 0; e < monitored_mask_.size(); ++e) {
    if (monitored_mask_[e]) monitored_edges_.push_back(e);
  }
  ComputeFaces();
  ComputeStats();
}

void SampledGraph::ComputeFaces() {
  graph::ComponentLabels labels = graph::ComponentsWithRemovedEdges(
      network_->mobility(), monitored_mask_);
  face_of_junction_ = std::move(labels.label);
  face_sizes_.assign(labels.count, 0);
  for (uint32_t f : face_of_junction_) ++face_sizes_[f];
  face_gateways_.assign(labels.count, {});
  for (graph::NodeId g : network_->gateways()) {
    face_gateways_[face_of_junction_[g]].push_back(g);
  }
  // Per-face incident monitored edges for region-local boundary extraction.
  face_edges_.assign(labels.count, {});
  const graph::PlanarGraph& mobility = network_->mobility();
  for (graph::EdgeId e : monitored_edges_) {
    uint32_t fu = face_of_junction_[mobility.Edge(e).u];
    uint32_t fv = face_of_junction_[mobility.Edge(e).v];
    face_edges_[fu].push_back(e);
    if (fv != fu) face_edges_[fv].push_back(e);
  }
}

void SampledGraph::ComputeStats() {
  const graph::PlanarGraph& mobility = network_->mobility();
  const graph::DualGraph& dual = network_->sensing();
  stats_.num_comm_sensors = comm_sensors_.size();
  stats_.num_monitored_edges = monitored_edges_.size();
  stats_.num_faces = face_sizes_.size();

  // Sensors participating in G̃: dual endpoints of monitored edges. Relays
  // are participants that were not selected as communication sensors.
  std::vector<bool> participant(dual.NumNodes(), false);
  std::vector<uint32_t> degree(dual.NumNodes(), 0);
  for (graph::EdgeId e : monitored_edges_) {
    graph::NodeId a = mobility.Edge(e).left;
    graph::NodeId b = mobility.Edge(e).right;
    participant[a] = true;
    participant[b] = true;
    ++degree[a];
    ++degree[b];
  }
  std::vector<bool> is_comm(dual.NumNodes(), false);
  for (graph::NodeId s : comm_sensors_) is_comm[s] = true;
  for (graph::NodeId n = 0; n < dual.NumNodes(); ++n) {
    if (participant[n] && !is_comm[n]) ++stats_.num_relay_sensors;
  }

  // Simplified G̃ (Fig. 6c/f): contract relay chains — every participant of
  // degree != 2 stays a node; edges equal monitored edges minus contracted
  // interior relays.
  size_t junction_nodes = 0;  // Degree != 2 participants.
  size_t chain_nodes = 0;     // Degree == 2 participants (contracted).
  for (graph::NodeId n = 0; n < dual.NumNodes(); ++n) {
    if (!participant[n]) continue;
    if (degree[n] == 2 && !is_comm[n]) {
      ++chain_nodes;
    } else {
      ++junction_nodes;
    }
  }
  stats_.simplified_nodes = junction_nodes;
  stats_.simplified_edges =
      monitored_edges_.size() >= chain_nodes
          ? monitored_edges_.size() - chain_nodes
          : 0;
}

void SampledGraph::LowerBoundFaces(
    const std::vector<graph::NodeId>& qr_junctions, QueryWorkspace& ws) const {
  ws.EnsureDomains(face_sizes_.size(), face_of_junction_.size(),
                   network_->sensing().NumNodes());
  uint32_t gen = ws.NextGeneration();
  std::vector<uint32_t>& junction_stamp = ws.junction_stamp();
  std::vector<uint32_t>& face_stamp = ws.face_stamp();
  std::vector<uint32_t>& face_count = ws.face_count();
  ws.faces.clear();
  // Count UNIQUE junctions per face: a duplicated junction in the query
  // must not inflate a face's hit count past its size (which would make the
  // full-coverage equality below silently reject the face).
  for (graph::NodeId n : qr_junctions) {
    if (junction_stamp[n] == gen) continue;
    junction_stamp[n] = gen;
    uint32_t f = face_of_junction_[n];
    if (face_stamp[f] != gen) {
      face_stamp[f] = gen;
      face_count[f] = 0;
      ws.faces.push_back(f);
    }
    ++face_count[f];
  }
  // Candidate faces in ascending id order (the allocating overload's output
  // order); the candidate list is at most |Q_R| long.
  std::sort(ws.faces.begin(), ws.faces.end());
  size_t kept = 0;
  for (uint32_t f : ws.faces) {
    if (face_count[f] == face_sizes_[f]) ws.faces[kept++] = f;
  }
  ws.faces.resize(kept);
}

std::vector<uint32_t> SampledGraph::LowerBoundFaces(
    const std::vector<graph::NodeId>& qr_junctions) const {
  QueryWorkspace& ws = LocalWorkspace();
  LowerBoundFaces(qr_junctions, ws);
  return ws.faces;
}

void SampledGraph::UpperBoundFaces(
    const std::vector<graph::NodeId>& qr_junctions, QueryWorkspace& ws) const {
  ws.EnsureDomains(face_sizes_.size(), face_of_junction_.size(),
                   network_->sensing().NumNodes());
  uint32_t gen = ws.NextGeneration();
  std::vector<uint32_t>& face_stamp = ws.face_stamp();
  ws.faces.clear();
  for (graph::NodeId n : qr_junctions) {
    uint32_t f = face_of_junction_[n];
    if (face_stamp[f] != gen) {
      face_stamp[f] = gen;
      ws.faces.push_back(f);
    }
  }
  std::sort(ws.faces.begin(), ws.faces.end());
}

std::vector<uint32_t> SampledGraph::UpperBoundFaces(
    const std::vector<graph::NodeId>& qr_junctions) const {
  QueryWorkspace& ws = LocalWorkspace();
  UpperBoundFaces(qr_junctions, ws);
  return ws.faces;
}

void SampledGraph::BoundaryOfFaces(const std::vector<uint32_t>& faces,
                                   QueryWorkspace& ws) const {
  const graph::PlanarGraph& mobility = network_->mobility();
  ws.EnsureDomains(face_sizes_.size(), face_of_junction_.size(),
                   network_->sensing().NumNodes());
  uint32_t gen = ws.NextGeneration();
  std::vector<uint32_t>& face_stamp = ws.face_stamp();
  std::vector<uint32_t>& sensor_stamp = ws.sensor_stamp();
  for (uint32_t f : faces) face_stamp[f] = gen;

  ws.boundary_edges.clear();
  ws.boundary_sensors.clear();
  for (uint32_t f : faces) {
    // A boundary edge has exactly one side in the region, so it shows up in
    // exactly one in-region face's incident list; interior edges show up
    // twice and are rejected both times.
    for (graph::EdgeId e : face_edges_[f]) {
      const graph::EdgeRecord& rec = mobility.Edge(e);
      bool u_in = face_stamp[face_of_junction_[rec.u]] == gen;
      bool v_in = face_stamp[face_of_junction_[rec.v]] == gen;
      if (u_in == v_in) continue;
      ws.boundary_edges.push_back({e, /*inward_is_forward=*/v_in});
      // The sensors holding this edge's tracking forms: its dual endpoints,
      // deduplicated by stamp in first-encounter order.
      if (sensor_stamp[rec.left] != gen) {
        sensor_stamp[rec.left] = gen;
        ws.boundary_sensors.push_back(rec.left);
      }
      if (sensor_stamp[rec.right] != gen) {
        sensor_stamp[rec.right] = gen;
        ws.boundary_sensors.push_back(rec.right);
      }
    }
    // ⋆v_ext virtual edges of every gateway cell inside the region.
    for (graph::NodeId g : face_gateways_[f]) {
      ws.boundary_edges.push_back(
          {network_->VirtualEdgeOf(g), /*inward_is_forward=*/true});
      graph::NodeId ext = network_->sensing().ExtNode();
      if (sensor_stamp[ext] != gen) {
        sensor_stamp[ext] = gen;
        ws.boundary_sensors.push_back(ext);
      }
    }
  }

  // Edge-id order == CSR slot order in the frozen store, so the batched
  // boundary kernels walk times_/offsets_ monotonically and their software
  // prefetches aim at ascending addresses. The flux sum is a total over
  // integer-valued terms, so reordering cannot change any query result.
  std::sort(ws.boundary_edges.begin(), ws.boundary_edges.end(),
            [](const forms::BoundaryEdge& a, const forms::BoundaryEdge& b) {
              return a.edge < b.edge;
            });
}

SampledGraph::RegionBoundary SampledGraph::BoundaryOfFaces(
    const std::vector<uint32_t>& faces) const {
  QueryWorkspace& ws = LocalWorkspace();
  BoundaryOfFaces(faces, ws);
  RegionBoundary boundary;
  boundary.edges = ws.boundary_edges;
  boundary.sensors = ws.boundary_sensors;
  return boundary;
}

}  // namespace innet::core
