#include "core/budget_planner.h"

#include <algorithm>

#include "util/logging.h"
#include "util/stats.h"

namespace innet::core {

double MeasureMedianError(const Framework& framework,
                          const sampling::SensorSampler& sampler, size_t m,
                          const std::vector<RangeQuery>& queries,
                          const DeploymentOptions& deployment, size_t reps) {
  const SensorNetwork& network = framework.network();
  util::Accumulator err;
  for (size_t rep = 0; rep < std::max<size_t>(1, reps); ++rep) {
    util::Rng rng(0xb0d6e7ULL * 2654435761ULL + rep);
    Deployment dep = framework.DeployWithSampler(sampler, m, deployment, rng);
    SampledQueryProcessor processor = dep.processor();
    for (const RangeQuery& q : queries) {
      double truth = network.GroundTruthStatic(q.junctions, q.t2);
      err.Add(util::RelativeError(
          truth,
          processor.Answer(q, CountKind::kStatic, BoundMode::kLower)
              .estimate));
    }
  }
  return err.empty() ? 1.0 : err.Summarize().median;
}

BudgetPlan PlanBudget(const Framework& framework,
                      const sampling::SensorSampler& sampler,
                      const std::vector<RangeQuery>& queries,
                      const BudgetPlanOptions& options) {
  BudgetPlan plan;
  INNET_CHECK(!queries.empty());
  size_t max_budget = options.max_budget > 0
                          ? options.max_budget
                          : framework.network().NumSensors();
  max_budget = std::min(max_budget, framework.network().NumSensors());
  size_t min_budget = std::max<size_t>(1, options.min_budget);

  auto probe = [&](size_t m) {
    double error = MeasureMedianError(framework, sampler, m, queries,
                                      options.deployment, options.reps);
    plan.probes.emplace_back(m, error);
    return error;
  };

  // Exponential probe upward until the target is met (or the cap reached).
  size_t lo = min_budget;
  size_t hi = min_budget;
  double error_hi = probe(hi);
  while (error_hi > options.target_error && hi < max_budget) {
    lo = hi;
    hi = std::min(hi * 2, max_budget);
    error_hi = probe(hi);
  }
  if (error_hi > options.target_error) {
    // Even the full budget misses the target.
    plan.recommended_budget = 0;
    plan.achieved_error = error_hi;
    plan.feasible = false;
    return plan;
  }
  if (plan.probes.size() == 1) {
    // min_budget already meets the target.
    plan.recommended_budget = hi;
    plan.achieved_error = error_hi;
    plan.feasible = true;
    return plan;
  }

  // Binary search in (lo, hi]: lo misses the target, hi meets it. Sampling
  // noise can make the measured error non-monotone between neighbouring
  // budgets; the search still returns a budget that met the target when
  // probed.
  size_t best = hi;
  double best_error = error_hi;
  while (lo + 1 < hi) {
    size_t mid = lo + (hi - lo) / 2;
    double error = probe(mid);
    if (error <= options.target_error) {
      hi = mid;
      best = mid;
      best_error = error;
    } else {
      lo = mid;
    }
  }
  plan.recommended_budget = best;
  plan.achieved_error = best_error;
  plan.feasible = true;
  return plan;
}

}  // namespace innet::core
