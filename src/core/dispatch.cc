#include "core/dispatch.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace innet::core {

const char* DispatchModeName(DispatchMode mode) {
  return mode == DispatchMode::kServerDirect ? "server-direct"
                                             : "perimeter-traversal";
}

namespace {

// Mean sensing-graph link length, the unit for hop estimation.
double MeanLinkLength(const SensorNetwork& network) {
  const graph::DualGraph& dual = network.sensing();
  double total = 0.0;
  size_t count = 0;
  for (graph::NodeId n = 0; n < dual.NumNodes(); ++n) {
    for (const graph::WeightedArc& arc : dual.adjacency()[n]) {
      total += arc.weight;
      ++count;
    }
  }
  return count == 0 ? 1.0 : total / static_cast<double>(count);
}

}  // namespace

DispatchCost SimulateDispatch(const SensorNetwork& network,
                              const std::vector<graph::NodeId>& perimeter_sensors,
                              DispatchMode mode) {
  DispatchCost cost;
  cost.sensors_contacted = perimeter_sensors.size();
  if (perimeter_sensors.empty()) return cost;

  if (mode == DispatchMode::kServerDirect) {
    cost.long_links = perimeter_sensors.size();
    cost.mesh_hops = 0;
    return cost;
  }

  // Perimeter traversal: enter at one sensor, walk the boundary cycle in
  // angular order, return from the last sensor.
  cost.long_links = 2;
  const graph::DualGraph& dual = network.sensing();
  geometry::Point centroid;
  size_t physical = 0;
  for (graph::NodeId s : perimeter_sensors) {
    if (s == dual.ExtNode()) continue;  // The ⋆v_ext side has no position.
    centroid = centroid + dual.Position(s);
    ++physical;
  }
  if (physical < 2) {
    cost.mesh_hops = physical > 0 ? physical - 1 : 0;
    return cost;
  }
  centroid = centroid / static_cast<double>(physical);

  std::vector<graph::NodeId> tour;
  tour.reserve(physical);
  for (graph::NodeId s : perimeter_sensors) {
    if (s != dual.ExtNode()) tour.push_back(s);
  }
  std::sort(tour.begin(), tour.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return geometry::AngleOf(centroid, dual.Position(a)) <
                     geometry::AngleOf(centroid, dual.Position(b));
            });

  double unit = std::max(MeanLinkLength(network), 1e-9);
  size_t hops = 0;
  for (size_t i = 0; i + 1 < tour.size(); ++i) {
    double d = geometry::Distance(dual.Position(tour[i]),
                                  dual.Position(tour[i + 1]));
    hops += std::max<size_t>(1, static_cast<size_t>(std::lround(d / unit)));
  }
  cost.mesh_hops = hops;
  return cost;
}

}  // namespace innet::core
