#include "core/dispatch.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/logging.h"

namespace innet::core {

namespace {

// Retransmission analytics exported for every lossy dispatch
// (docs/OBSERVABILITY.md): how many dispatches ran, the expected retry
// overhead, and the expected end-to-end latency distribution.
struct DispatchMetrics {
  obs::Counter& dispatches;
  obs::Counter& messages;
  obs::Histogram& expected_retransmissions;
  obs::Histogram& expected_latency_ms;

  static DispatchMetrics& Get() {
    static DispatchMetrics metrics{
        obs::MetricsRegistry::Global().GetCounter(
            "innet_dispatches", "Lossy-channel dispatch simulations"),
        obs::MetricsRegistry::Global().GetCounter(
            "innet_dispatch_messages",
            "First-attempt messages across all lossy dispatches"),
        obs::MetricsRegistry::Global().GetHistogram(
            "innet_dispatch_retransmissions",
            obs::Histogram::ExponentialBounds(0.25, 2.0, 16),
            "Expected retransmissions per lossy dispatch"),
        obs::MetricsRegistry::Global().GetHistogram(
            "innet_dispatch_latency_ms",
            obs::Histogram::ExponentialBounds(1.0, 2.0, 16),
            "Expected end-to-end dispatch latency (ms, incl. backoff)")};
    return metrics;
  }
};

}  // namespace

const char* DispatchModeName(DispatchMode mode) {
  return mode == DispatchMode::kServerDirect ? "server-direct"
                                             : "perimeter-traversal";
}

namespace {

// Mean sensing-graph link length, the unit for hop estimation.
// Expected attempts per message on a channel with per-transmission loss p
// and up to R retransmissions: sum_{k=0..R} p^k (attempt k+1 happens iff
// the first k all failed), truncated — undelivered messages stop retrying.
double ExpectedAttempts(double p, size_t retries) {
  double attempts = 0.0;
  double fail_all = 1.0;
  for (size_t k = 0; k <= retries; ++k) {
    attempts += fail_all;
    fail_all *= p;
  }
  return attempts;
}

// Expected backoff wait accumulated by one message: after attempt k fails
// (probability p^k of reaching that state), the sender waits
// min(base * 2^(k-1), cap) before retrying.
double ExpectedBackoffMs(const ChannelModel& channel) {
  double wait = 0.0;
  double fail_all = channel.loss_rate;
  double backoff = channel.backoff_base_ms;
  for (size_t k = 1; k <= channel.max_retries; ++k) {
    wait += fail_all * std::min(backoff, channel.backoff_cap_ms);
    fail_all *= channel.loss_rate;
    backoff *= 2.0;
  }
  return wait;
}

double MeanLinkLength(const SensorNetwork& network) {
  const graph::DualGraph& dual = network.sensing();
  double total = 0.0;
  size_t count = 0;
  for (graph::NodeId n = 0; n < dual.NumNodes(); ++n) {
    for (const graph::WeightedArc& arc : dual.adjacency()[n]) {
      total += arc.weight;
      ++count;
    }
  }
  return count == 0 ? 1.0 : total / static_cast<double>(count);
}

}  // namespace

DispatchCost SimulateDispatch(const SensorNetwork& network,
                              const std::vector<graph::NodeId>& perimeter_sensors,
                              DispatchMode mode) {
  DispatchCost cost;
  cost.sensors_contacted = perimeter_sensors.size();
  if (perimeter_sensors.empty()) return cost;

  if (mode == DispatchMode::kServerDirect) {
    cost.long_links = perimeter_sensors.size();
    cost.mesh_hops = 0;
    return cost;
  }

  // Perimeter traversal: enter at one sensor, walk the boundary cycle in
  // angular order, return from the last sensor.
  cost.long_links = 2;
  const graph::DualGraph& dual = network.sensing();
  geometry::Point centroid;
  size_t physical = 0;
  for (graph::NodeId s : perimeter_sensors) {
    if (s == dual.ExtNode()) continue;  // The ⋆v_ext side has no position.
    centroid = centroid + dual.Position(s);
    ++physical;
  }
  if (physical < 2) {
    cost.mesh_hops = physical > 0 ? physical - 1 : 0;
    return cost;
  }
  centroid = centroid / static_cast<double>(physical);

  std::vector<graph::NodeId> tour;
  tour.reserve(physical);
  for (graph::NodeId s : perimeter_sensors) {
    if (s != dual.ExtNode()) tour.push_back(s);
  }
  std::sort(tour.begin(), tour.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return geometry::AngleOf(centroid, dual.Position(a)) <
                     geometry::AngleOf(centroid, dual.Position(b));
            });

  double unit = std::max(MeanLinkLength(network), 1e-9);
  size_t hops = 0;
  for (size_t i = 0; i + 1 < tour.size(); ++i) {
    double d = geometry::Distance(dual.Position(tour[i]),
                                  dual.Position(tour[i + 1]));
    hops += std::max<size_t>(1, static_cast<size_t>(std::lround(d / unit)));
  }
  cost.mesh_hops = hops;
  return cost;
}

DispatchCost SimulateDispatch(const SensorNetwork& network,
                              const std::vector<graph::NodeId>& perimeter_sensors,
                              DispatchMode mode, const ChannelModel& channel) {
  INNET_CHECK(channel.loss_rate >= 0.0 && channel.loss_rate < 1.0);
  DispatchCost cost = SimulateDispatch(network, perimeter_sensors, mode);
  if (cost.Messages() == 0) return cost;

  double p = channel.loss_rate;
  double attempts = ExpectedAttempts(p, channel.max_retries);
  double delivered =
      1.0 - std::pow(p, static_cast<double>(channel.max_retries + 1));
  double backoff = ExpectedBackoffMs(channel);

  cost.expected_retransmissions =
      static_cast<double>(cost.Messages()) * (attempts - 1.0);
  cost.delivery_probability =
      std::pow(delivered, static_cast<double>(cost.Messages()));

  // Per-message expected time: every attempt pays the transmit time, every
  // failed attempt the backoff wait before the next one.
  double long_ms = channel.long_link_ms * attempts + backoff;
  double hop_ms = channel.mesh_hop_ms * attempts + backoff;
  if (mode == DispatchMode::kServerDirect) {
    // All sensors are contacted in parallel; each contact is a sequential
    // request + reply over the long link.
    cost.expected_latency_ms = 2.0 * long_ms;
  } else {
    // Enter, walk the perimeter hop by hop, return.
    cost.expected_latency_ms =
        2.0 * long_ms + static_cast<double>(cost.mesh_hops) * hop_ms;
  }

  DispatchMetrics& metrics = DispatchMetrics::Get();
  metrics.dispatches.Increment();
  metrics.messages.Increment(cost.Messages());
  metrics.expected_retransmissions.Observe(cost.expected_retransmissions);
  metrics.expected_latency_ms.Observe(cost.expected_latency_ms);
  return cost;
}

}  // namespace innet::core
