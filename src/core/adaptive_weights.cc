#include "core/adaptive_weights.h"

namespace innet::core {

std::vector<double> QueryFrequencyWeights(const SensorNetwork& network,
                                          const std::vector<RangeQuery>& history,
                                          double base_weight) {
  const graph::PlanarGraph& mobility = network.mobility();
  size_t num_sensors = network.sensing().NumNodes();
  std::vector<double> weights(num_sensors, base_weight);
  // Epoch stamps avoid counting a sensor twice within one query.
  std::vector<uint32_t> stamp(num_sensors, 0);
  uint32_t epoch = 0;
  for (const RangeQuery& query : history) {
    ++epoch;
    for (graph::NodeId junction : query.junctions) {
      for (graph::FaceId sensor : mobility.FacesAroundNode(junction)) {
        if (stamp[sensor] == epoch) continue;
        stamp[sensor] = epoch;
        weights[sensor] += 1.0;
      }
    }
  }
  weights[network.sensing().ExtNode()] = 0.0;
  return weights;
}

}  // namespace innet::core
