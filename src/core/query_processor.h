// Query processors: the sampled in-network processor (§4.6-4.8) and the
// unsampled exact processor ([34], the paper's reference).
#ifndef INNET_CORE_QUERY_PROCESSOR_H_
#define INNET_CORE_QUERY_PROCESSOR_H_

#include "core/health.h"
#include "core/query.h"
#include "core/query_workspace.h"
#include "core/sampled_graph.h"
#include "core/sensor_network.h"
#include "forms/edge_count_store.h"
#include "forms/frozen_tracking_form.h"
#include "forms/store_handle.h"
#include "obs/explain.h"
#include "obs/trace.h"

namespace innet::core {

/// Answers queries on a sampled graph against any edge-count store (exact
/// tracking forms or learned models). Holds references only; the graph and
/// store must outlive the processor.
///
/// When the store is (dynamically) a forms::FrozenTrackingForm the
/// processor integrates through the devirtualized fused kernels — detected
/// once at construction, answers stay bit-identical (docs/PERFORMANCE.md).
class SampledQueryProcessor {
 public:
  SampledQueryProcessor(const SampledGraph& sampled,
                        const forms::EdgeCountStore& store);

  /// Handle mode (live ingestion): the processor follows the store
  /// published through `handle` — every Answer* call re-checks the
  /// generation (one atomic load, no heap allocation on the warm path) and
  /// re-acquires on change, so answers always reflect the latest completed
  /// epoch instead of the store latched at construction. A handle-mode
  /// processor is single-threaded; give each reader thread its own (they
  /// share the handle).
  SampledQueryProcessor(const SampledGraph& sampled,
                        const forms::FrozenStoreHandle& handle);

  /// Approximates the query under the given bound mode. A miss (no face of
  /// G̃ satisfies the bound) reports estimate 0 with missed = true.
  ///
  /// `trace` (optional) records the boundary-resolution and
  /// form-integration stage spans of this query (docs/OBSERVABILITY.md).
  /// Every call also feeds the `innet_processor_*` metrics of the global
  /// registry. `explain` (optional) receives the answer's provenance —
  /// resolved faces, dead-space fraction, boundary size, store family —
  /// which is deterministic for a given deployment and query.
  /// `workspace` (optional) supplies the scratch buffers of the
  /// resolve-and-integrate path; with it (or the per-thread fallback,
  /// core::LocalWorkspace) the warm path performs ZERO heap allocations.
  /// Every call also overwrites the workspace's `cost` profile
  /// (obs/query_cost.h) with this query's cost account — plain stores,
  /// still zero allocations.
  QueryAnswer Answer(const RangeQuery& query, CountKind kind,
                     BoundMode bound, obs::QueryTrace* trace = nullptr,
                     obs::ExplainRecord* explain = nullptr,
                     QueryWorkspace* workspace = nullptr) const;

  /// Fault-tolerant answering (docs/FAULTS.md): when the resolved region's
  /// boundary touches edges owned by sensors `health` reports failed, the
  /// boundary is rerouted through healthy dual edges (homologous
  /// deformation across the dead faces) and the answer carries a count
  /// interval widened by the missed-crossing bound instead of a silently
  /// wrong point estimate. With no failed owner on the boundary this
  /// matches Answer() exactly (with a degenerate interval).
  QueryAnswer AnswerDegraded(const RangeQuery& query, CountKind kind,
                             BoundMode bound, const SensorHealthView& health,
                             const DegradedOptions& options,
                             obs::QueryTrace* trace = nullptr,
                             obs::ExplainRecord* explain = nullptr) const;

  /// Time-series evaluation: static counts of the query's region at
  /// `steps` evenly spaced instants spanning [query.t1, query.t2]
  /// (inclusive endpoints). Any step count is accepted: `steps == 1`
  /// returns the single instant at t1 and `steps == 0` an empty vector.
  /// The region is resolved and its boundary dispatched ONCE. On a frozen
  /// store the whole series is evaluated by the batch kernel — one merge
  /// pass over each boundary edge's event sequence instead of `steps`
  /// independent searches. Returns an empty vector on a miss.
  std::vector<double> AnswerSeries(const RangeQuery& query, BoundMode bound,
                                   size_t steps) const;

 private:
  /// Re-acquires the handle's store when its generation moved (no-op in
  /// plain store mode). Called at the top of every Answer* entry point;
  /// `mutable` because following the published store is not an observable
  /// state change — answers are those of the current store either way.
  void RefreshStore() const;

  const SampledGraph* sampled_;
  mutable const forms::EdgeCountStore* store_;
  // Non-null when store_ is a frozen tracking form (fused-kernel path).
  mutable const forms::FrozenTrackingForm* frozen_;
  // Handle mode only: the followed handle and the pinned snapshot.
  const forms::FrozenStoreHandle* handle_ = nullptr;
  mutable forms::FrozenStoreHandle::Snapshot snapshot_;
  // Cost-profile classification, latched at construction: store family
  // (0 exact / 1 learned) and the deployment's total junction cells for
  // region-size deciles.
  uint8_t store_kind_ = 0;
  size_t total_cells_ = 0;
};

/// Fills the resolution-side provenance fields of `explain` (kind, bound,
/// faces sorted ascending, region/resolved cell counts, dead-space
/// fraction, store provenance). Shared by SampledQueryProcessor and
/// runtime::BatchQueryEngine so cached and fresh resolutions explain
/// identically. `explain` must be non-null.
void FillExplainResolution(const SampledGraph& sampled,
                           const RangeQuery& query, CountKind kind,
                           BoundMode bound,
                           const std::vector<uint32_t>& faces,
                           const forms::EdgeCountStore& store,
                           obs::ExplainRecord* explain);

/// Mirrors the answer-side fields of `answer` into `explain` (estimate,
/// interval, miss/degraded flags, reroute counts). Timing fields are
/// deliberately NOT copied — explain output stays deterministic.
void FillExplainAnswer(const QueryAnswer& answer, obs::ExplainRecord* explain);

/// Exact processor over the full sensing graph. Per §5.4, the unsampled
/// system floods every sensor inside the query region, so nodes_accessed
/// grows with the region area.
class UnsampledQueryProcessor {
 public:
  explicit UnsampledQueryProcessor(const SensorNetwork& network)
      : network_(&network) {}

  /// `explain` (optional) receives provenance; the exact path has no
  /// sampled faces and no dead space, so those fields stay empty/zero.
  /// `workspace` (optional) replaces the per-query junction mask and
  /// flooded-sensor set with stamped scratch (zero steady-state
  /// allocations; defaults to the calling thread's LocalWorkspace).
  QueryAnswer Answer(const RangeQuery& query, CountKind kind,
                     obs::ExplainRecord* explain = nullptr,
                     QueryWorkspace* workspace = nullptr) const;

 private:
  const SensorNetwork* network_;
};

}  // namespace innet::core

#endif  // INNET_CORE_QUERY_PROCESSOR_H_
