// Query workload generation (§5.1.5): rectangular regions of a target area
// fraction mapped to face unions of the sensing graph, with random time
// intervals.
#ifndef INNET_CORE_WORKLOAD_H_
#define INNET_CORE_WORKLOAD_H_

#include <optional>
#include <string>
#include <vector>

#include "core/query.h"
#include "core/sensor_network.h"
#include "util/rng.h"

namespace innet::core {

/// Workload knobs.
struct WorkloadOptions {
  /// Query-region area as a fraction of the domain area.
  double area_fraction = 0.01;

  /// Time-interval length range, as fractions of the horizon.
  double min_duration_fraction = 0.1;
  double max_duration_fraction = 0.4;

  /// Event-time horizon; intervals are drawn inside [0, horizon].
  double horizon = 1.0;

  /// Retries before giving up on finding a non-empty region.
  int max_tries = 64;
};

/// Draws one query: a rectangle of the requested area (aspect ratio in
/// [0.6, 1.7], fully inside the domain) that contains at least one sensing
/// cell, plus a random time interval. Returns nullopt when max_tries
/// rectangles were all empty.
std::optional<RangeQuery> GenerateQuery(const SensorNetwork& network,
                                        const WorkloadOptions& options,
                                        util::Rng& rng);

/// Draws `count` queries (skipping failed draws).
std::vector<RangeQuery> GenerateWorkload(const SensorNetwork& network,
                                         const WorkloadOptions& options,
                                         size_t count, util::Rng& rng);

/// Parses one batch-file query line "x0,y0,x1,y1,t1,t2" and resolves its
/// junction set against `network`. Returns false and fills *error on
/// malformed input: wrong field count, trailing garbage, non-finite
/// values, or t2 < t1. An EMPTY junction set is not an error — callers
/// decide whether such queries are skipped or reported.
bool ParseBatchQueryLine(const std::string& line, const SensorNetwork& network,
                         RangeQuery* query, std::string* error);

}  // namespace innet::core

#endif  // INNET_CORE_WORKLOAD_H_
