// Degraded-mode region resolution: rerouting a query boundary around
// failed sensors (docs/FAULTS.md).
//
// A region of G̃ is a union of faces, and its boundary consists purely of
// monitored edges — each owned by one physical sensor (SensorNetwork::
// EdgeOwner). When an owner has failed, its tracking form is unreadable and
// a point estimate over that boundary is silently wrong. Instead of
// trusting it, the region is DEFORMED across the dead faces, in both
// directions, until every boundary edge is healthy:
//
//   - outward: absorb the face on the far side of each dead boundary edge
//     (the dead edge becomes interior and drops out of the integral),
//     yielding F+ ⊇ F whose boundary is healthy;
//   - inward: shed the face on the near side, yielding F- ⊆ F.
//
// Both deformations move the boundary homologously — across whole faces —
// so the deformed boundaries stay unions of monitored edges. Static
// occupancy is monotone under region inclusion, so the fault-free count of
// F is bracketed by the counts of F- and F+; the reported interval widens
// further by the missed-crossing slack of the healthy channel (message
// loss, clock skew). See AnswerFromDegradedBoundary for the exact terms.
#ifndef INNET_CORE_DEGRADED_H_
#define INNET_CORE_DEGRADED_H_

#include <vector>

#include "core/health.h"
#include "core/query.h"
#include "core/sampled_graph.h"
#include "forms/edge_count_store.h"

namespace innet::core {

/// A region resolved under a health view: the fault-free boundary plus, when
/// it touched dead edges, the two healthy deformations bracketing it.
struct DegradedBoundary {
  /// No face of G̃ satisfied the bound mode (same semantics as QueryAnswer).
  bool missed = false;
  /// At least one boundary edge (original or exposed while rerouting) was
  /// owned by a failed sensor; `outer`/`inner` are then populated.
  bool degraded = false;

  /// The fault-free resolution (always populated unless missed).
  SampledGraph::RegionBoundary boundary;

  /// Healthy boundary of the outward deformation F+ ⊇ F.
  SampledGraph::RegionBoundary outer;
  /// Healthy boundary of the inward deformation F- ⊆ F. Meaningless when
  /// `inner_empty` — the deformation shed every face (count lower bound 0).
  SampledGraph::RegionBoundary inner;
  bool inner_empty = false;

  /// Dead edges on the ORIGINAL boundary.
  size_t dead_boundary_edges = 0;
  /// Distinct dead edges encountered across all rerouting rounds.
  size_t dead_edges_total = 0;
  /// Faces absorbed by the outward deformation.
  size_t absorbed_faces = 0;
  /// Faces shed by the inward deformation.
  size_t shed_faces = 0;
};

/// Resolves the union of `faces` under `health`. With no failed owner on
/// any boundary edge the result is exactly the fault-free boundary
/// (degraded == false) and the deformations are skipped.
DegradedBoundary ResolveDegradedBoundary(const SampledGraph& sampled,
                                         const std::vector<uint32_t>& faces,
                                         const SensorHealthView& health,
                                         const DegradedOptions& options);

/// Evaluates one query over a resolved degraded boundary. Fault-free
/// resolutions produce the ordinary point answer with a degenerate
/// interval; degraded ones produce the bracketing interval, with the
/// estimate at its pre-slack midpoint.
QueryAnswer AnswerFromDegradedBoundary(const forms::EdgeCountStore& store,
                                       const DegradedBoundary& resolved,
                                       const RangeQuery& query, CountKind kind,
                                       const DegradedOptions& options);

}  // namespace innet::core

#endif  // INNET_CORE_DEGRADED_H_
