// SensorNetwork: the mobility graph, its dual sensing graph, the ingested
// crossing-event stream, and the exact (unsampled) reference store used both
// as the paper's baseline comparator [34] and as the ground truth η of
// §5.1.4.
//
// ⋆v_ext. Objects enter the domain from the infinity node (Fig. 8a) through
// gateway junctions (junctions on the outer face). Each gateway carries one
// VIRTUAL sensing edge — the dual of its (⋆v_ext, gateway) connection —
// with edge ids appended after the real sensing edges. A trajectory starting
// at a gateway produces an entry crossing on that virtual edge, and any
// region containing a gateway cell includes the virtual edge in its
// boundary. This makes differential-form counts exact for every region
// (Thm 4.1-4.3) while adding no cost to interior queries.
#ifndef INNET_CORE_SENSOR_NETWORK_H_
#define INNET_CORE_SENSOR_NETWORK_H_

#include <memory>
#include <vector>

#include "forms/region_count.h"
#include "forms/tracking_form.h"
#include "geometry/polygon.h"
#include "geometry/rect.h"
#include "graph/dual_graph.h"
#include "graph/planar_graph.h"
#include "mobility/trajectory.h"
#include "spatial/rtree.h"

namespace innet::core {

/// Immutable network structure plus the ingested event history.
class SensorNetwork {
 public:
  /// Takes ownership of the mobility graph and derives the sensing graph.
  explicit SensorNetwork(graph::PlanarGraph mobility);

  SensorNetwork(const SensorNetwork&) = delete;
  SensorNetwork& operator=(const SensorNetwork&) = delete;

  const graph::PlanarGraph& mobility() const { return mobility_; }
  const graph::DualGraph& sensing() const { return sensing_; }

  /// Physical sensors (dual nodes except the ext node).
  size_t NumSensors() const { return sensing_.NumNodes() - 1; }

  /// Gateway junctions (outer-face junctions with a ⋆v_ext virtual edge).
  const std::vector<graph::NodeId>& gateways() const { return gateways_; }
  const std::vector<bool>& gateway_mask() const { return gateway_mask_; }

  /// Edge-id space including the virtual ⋆v_ext edges; stores must be sized
  /// with this, not mobility().NumEdges().
  size_t TotalEdgeSpace() const {
    return mobility_.NumEdges() + gateways_.size();
  }

  bool IsVirtualEdge(graph::EdgeId e) const {
    return e >= mobility_.NumEdges();
  }

  /// Virtual edge id of a gateway junction (kInvalidEdge for non-gateways).
  graph::EdgeId VirtualEdgeOf(graph::NodeId junction) const {
    return virtual_edge_of_[junction];
  }

  /// The single physical sensor holding edge `e`'s tracking form: the dual
  /// node on its left side, falling back to the right side when the left is
  /// the ext node. Virtual ⋆v_ext edges are server-side bookkeeping with no
  /// owning sensor — they return kInvalidNode and never fail. The fault
  /// layer (src/faults) and degraded-mode answering share this mapping.
  graph::NodeId EdgeOwner(graph::EdgeId e) const {
    if (IsVirtualEdge(e)) return graph::kInvalidNode;
    graph::FaceId left = mobility_.Edge(e).left;
    return left != sensing_.ExtNode() ? left : mobility_.Edge(e).right;
  }

  /// Appends the ⋆v_ext virtual boundary edges of every in-region gateway
  /// (inward = forward by convention) to `boundary`.
  void AppendVirtualBoundary(const std::vector<bool>& in_region,
                             std::vector<forms::BoundaryEdge>* boundary) const;

  /// Full region boundary (real + virtual edges) of a junction-cell union.
  std::vector<forms::BoundaryEdge> RegionBoundaryWithVirtual(
      const std::vector<bool>& in_region) const;

  /// Extracts, time-sorts, and ingests the crossing events of
  /// `trajectories` into the reference store. May be called once.
  void IngestTrajectories(const std::vector<mobility::Trajectory>& trajectories);

  /// The time-sorted crossing-event stream (for replays into sampled
  /// stores).
  const std::vector<mobility::CrossingEvent>& events() const {
    return events_;
  }

  /// Exact tracking forms over every sensing edge.
  const forms::TrackingForm& reference_store() const { return reference_; }

  /// Bounding box of the mobility domain.
  const geometry::Rect& DomainBounds() const { return domain_bounds_; }
  double DomainArea() const { return domain_bounds_.Area(); }

  /// Junctions whose sensing cell (dual face) is fully contained in `rect` —
  /// the face-union region Q_R of §5.1.5. Cells of junctions bordering the
  /// outer face are unbounded and never qualify.
  std::vector<graph::NodeId> JunctionsInRect(const geometry::Rect& rect) const;

  /// Arbitrary-shape query regions (§4.6: "supports the query region of any
  /// arbitrary shape"): junctions whose sensing cell is fully contained in
  /// the simple polygon `region`.
  std::vector<graph::NodeId> JunctionsInPolygon(
      const geometry::Polygon& region) const;

  /// Junction membership mask helper.
  std::vector<bool> JunctionMask(
      const std::vector<graph::NodeId>& junctions) const;

  /// Ground truth η: exact static count (occupancy at t) of the junction-cell
  /// union, from the unsampled reference store.
  double GroundTruthStatic(const std::vector<graph::NodeId>& junctions,
                           double t) const;

  /// Ground truth η for the transient count over (t0, t1].
  double GroundTruthTransient(const std::vector<graph::NodeId>& junctions,
                              double t0, double t1) const;

 private:
  graph::PlanarGraph mobility_;
  graph::DualGraph sensing_;
  std::vector<graph::NodeId> gateways_;
  std::vector<bool> gateway_mask_;
  std::vector<graph::EdgeId> virtual_edge_of_;
  forms::TrackingForm reference_;
  std::vector<mobility::CrossingEvent> events_;
  geometry::Rect domain_bounds_;
  // Bounding box of each junction's sensing cell (cells touching the ext
  // node get an unbounded marker via huge extents), R-tree indexed for
  // region resolution.
  std::vector<geometry::Rect> cell_bounds_;
  std::unique_ptr<spatial::RTree> cell_index_;
};

}  // namespace innet::core

#endif  // INNET_CORE_SENSOR_NETWORK_H_
