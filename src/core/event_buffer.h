// Bounded-lateness event reordering.
//
// Real sensor meshes deliver crossing events out of order (multi-hop
// forwarding, per-sensor clocks). The tracking-form stores and live
// monitors require per-edge time order, so ingestion pipelines place this
// reorder buffer in front: events may arrive up to `max_lateness` seconds
// late; the buffer holds a sliding window and releases events in global
// time order once they can no longer be preceded by an unseen earlier
// event. Events later than the watermark are reported as dropped rather
// than corrupting downstream state.
#ifndef INNET_CORE_EVENT_BUFFER_H_
#define INNET_CORE_EVENT_BUFFER_H_

#include <cstring>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "mobility/trajectory.h"

namespace innet::core {

/// Sliding-window reorder buffer for crossing events.
class EventReorderBuffer {
 public:
  using Sink = std::function<void(const mobility::CrossingEvent&)>;

  /// Events arriving more than `max_lateness` seconds behind the newest
  /// arrival are dropped.
  EventReorderBuffer(double max_lateness, Sink sink);

  /// Offers one event. Returns false when the event violated the lateness
  /// bound and was dropped, or when it exactly duplicated an event (same
  /// edge, direction, and timestamp) still inside the reorder window —
  /// duplicate deliveries from retransmitting meshes would otherwise
  /// double-count downstream.
  bool Push(const mobility::CrossingEvent& event);

  /// Releases every buffered event (end of stream) and advances the
  /// watermark to the newest admitted event. The buffer stays usable for a
  /// subsequent stream segment: events at or after the flushed watermark
  /// flow normally, older ones are dropped.
  void Flush();

  /// Events currently held back.
  size_t Pending() const { return heap_.size(); }

  /// Events dropped for exceeding the lateness bound.
  size_t Dropped() const { return dropped_; }

  /// Exact duplicates suppressed within the reorder window.
  size_t Duplicates() const { return duplicates_; }

  /// Timestamp below which all events have been released.
  double Watermark() const { return watermark_; }

 private:
  struct Later {
    bool operator()(const mobility::CrossingEvent& a,
                    const mobility::CrossingEvent& b) const {
      return a.time > b.time;
    }
  };

  void Release();
  void ReleaseTop();

  // Dedup key: (edge, direction, exact timestamp bits).
  struct EventKey {
    graph::EdgeId edge;
    bool forward;
    uint64_t time_bits;

    static EventKey Of(const mobility::CrossingEvent& e) {
      uint64_t bits;
      std::memcpy(&bits, &e.time, sizeof(bits));
      return {e.edge, e.forward, bits};
    }
    bool operator==(const EventKey& o) const {
      return edge == o.edge && forward == o.forward &&
             time_bits == o.time_bits;
    }
  };
  struct EventKeyHash {
    size_t operator()(const EventKey& k) const {
      uint64_t h = k.time_bits ^ (static_cast<uint64_t>(k.edge) << 1) ^
                   static_cast<uint64_t>(k.forward);
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };

  double max_lateness_;
  Sink sink_;
  std::priority_queue<mobility::CrossingEvent,
                      std::vector<mobility::CrossingEvent>, Later>
      heap_;
  // Multiplicity of each distinct event currently buffered, plus (at count
  // 0) events already released at exactly the watermark timestamp — a late
  // duplicate of those still passes the `time < watermark_` gate.
  std::unordered_map<EventKey, size_t, EventKeyHash> pending_keys_;
  // Keys released at exactly the current watermark (map value 0); cleared
  // whenever the watermark advances.
  std::vector<EventKey> released_at_watermark_;
  double newest_ = -1e300;
  double watermark_ = -1e300;
  size_t dropped_ = 0;
  size_t duplicates_ = 0;
};

}  // namespace innet::core

#endif  // INNET_CORE_EVENT_BUFFER_H_
