// Bounded-lateness event reordering.
//
// Real sensor meshes deliver crossing events out of order (multi-hop
// forwarding, per-sensor clocks). The tracking-form stores and live
// monitors require per-edge time order, so ingestion pipelines place this
// reorder buffer in front: events may arrive up to `max_lateness` seconds
// late; the buffer holds a sliding window and releases events in global
// time order once they can no longer be preceded by an unseen earlier
// event. Events later than the watermark are reported as dropped rather
// than corrupting downstream state.
#ifndef INNET_CORE_EVENT_BUFFER_H_
#define INNET_CORE_EVENT_BUFFER_H_

#include <functional>
#include <queue>
#include <vector>

#include "mobility/trajectory.h"

namespace innet::core {

/// Sliding-window reorder buffer for crossing events.
class EventReorderBuffer {
 public:
  using Sink = std::function<void(const mobility::CrossingEvent&)>;

  /// Events arriving more than `max_lateness` seconds behind the newest
  /// arrival are dropped.
  EventReorderBuffer(double max_lateness, Sink sink);

  /// Offers one event. Returns false when the event violated the lateness
  /// bound and was dropped.
  bool Push(const mobility::CrossingEvent& event);

  /// Releases every buffered event (end of stream) and advances the
  /// watermark to the newest admitted event. The buffer stays usable for a
  /// subsequent stream segment: events at or after the flushed watermark
  /// flow normally, older ones are dropped.
  void Flush();

  /// Events currently held back.
  size_t Pending() const { return heap_.size(); }

  /// Events dropped for exceeding the lateness bound.
  size_t Dropped() const { return dropped_; }

  /// Timestamp below which all events have been released.
  double Watermark() const { return watermark_; }

 private:
  struct Later {
    bool operator()(const mobility::CrossingEvent& a,
                    const mobility::CrossingEvent& b) const {
      return a.time > b.time;
    }
  };

  void Release();

  double max_lateness_;
  Sink sink_;
  std::priority_queue<mobility::CrossingEvent,
                      std::vector<mobility::CrossingEvent>, Later>
      heap_;
  double newest_ = -1e300;
  double watermark_ = -1e300;
  size_t dropped_ = 0;
};

}  // namespace innet::core

#endif  // INNET_CORE_EVENT_BUFFER_H_
