#include "core/live_monitor.h"

#include <algorithm>

#include "util/logging.h"

namespace innet::core {

LiveRegionMonitor::LiveRegionMonitor(
    const SensorNetwork& network,
    const std::vector<graph::NodeId>& junctions) {
  Watch(network.RegionBoundaryWithVirtual(network.JunctionMask(junctions)));
}

LiveRegionMonitor::LiveRegionMonitor(const SampledGraph& sampled,
                                     const std::vector<uint32_t>& faces) {
  Watch(sampled.BoundaryOfFaces(faces).edges);
}

void LiveRegionMonitor::Watch(
    const std::vector<forms::BoundaryEdge>& boundary) {
  deltas_.reserve(boundary.size());
  for (const forms::BoundaryEdge& edge : boundary) {
    deltas_[edge.edge] = edge.inward_is_forward ? 1 : -1;
  }
}

void LiveRegionMonitor::OnEvent(const mobility::CrossingEvent& event) {
  INNET_DCHECK(event.time >= last_time_);
  last_time_ = event.time;
  auto it = deltas_.find(event.edge);
  if (it == deltas_.end()) return;
  count_ += event.forward ? it->second : -it->second;
  ++boundary_events_;
}

forms::CountInterval LiveRegionMonitor::CurrentInterval(
    double drop_rate_bound) const {
  double value = static_cast<double>(count_);
  if (drop_rate_bound <= 0.0) return forms::CountInterval::Point(value);
  double p = std::min(drop_rate_bound, 0.999);
  double slack = static_cast<double>(boundary_events_) * p / (1.0 - p);
  return {value - slack, value + slack};
}

}  // namespace innet::core
