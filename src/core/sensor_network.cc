#include "core/sensor_network.h"

#include <algorithm>

#include "core/query.h"
#include "forms/region_count.h"
#include "util/logging.h"

namespace innet::core {

namespace {
const char* kKindNames[] = {"static", "transient"};
const char* kBoundNames[] = {"lower", "upper"};
}  // namespace

SensorNetwork::SensorNetwork(graph::PlanarGraph mobility)
    : mobility_(std::move(mobility)),
      sensing_(mobility_),
      gateways_(mobility::GatewayJunctions(mobility_)),
      gateway_mask_(mobility::GatewayMask(mobility_)),
      virtual_edge_of_(mobility_.NumNodes(), graph::kInvalidEdge),
      reference_(mobility_.NumEdges() + gateways_.size()) {
  for (size_t k = 0; k < gateways_.size(); ++k) {
    virtual_edge_of_[gateways_[k]] =
        static_cast<graph::EdgeId>(mobility_.NumEdges() + k);
  }
  domain_bounds_ = geometry::BoundingBox(mobility_.positions().begin(),
                                         mobility_.positions().end());
  // Precompute per-junction sensing-cell bounding boxes (over the incident
  // face centroids; the ext node's far-away position makes border cells
  // effectively unbounded, which is the intended semantics).
  cell_bounds_.reserve(mobility_.NumNodes());
  for (graph::NodeId n = 0; n < mobility_.NumNodes(); ++n) {
    geometry::Rect box(mobility_.Position(n).x, mobility_.Position(n).y,
                       mobility_.Position(n).x, mobility_.Position(n).y);
    for (graph::FaceId f : mobility_.FacesAroundNode(n)) {
      box.ExpandToInclude(sensing_.Position(f));
    }
    cell_bounds_.push_back(box);
  }
  cell_index_ = std::make_unique<spatial::RTree>(cell_bounds_);
}

void SensorNetwork::IngestTrajectories(
    const std::vector<mobility::Trajectory>& trajectories) {
  INNET_CHECK(events_.empty());
  for (const mobility::Trajectory& trajectory : trajectories) {
    if (trajectory.nodes.empty()) continue;
    // ⋆v_ext entry crossing for gateway starts.
    if (gateway_mask_[trajectory.nodes.front()]) {
      events_.push_back({virtual_edge_of_[trajectory.nodes.front()],
                         /*forward=*/true, trajectory.times.front()});
    }
    std::vector<mobility::CrossingEvent> crossings =
        mobility::ExtractCrossingEvents(mobility_, trajectory);
    events_.insert(events_.end(), crossings.begin(), crossings.end());
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const mobility::CrossingEvent& a,
                      const mobility::CrossingEvent& b) {
                     return a.time < b.time;
                   });
  for (const mobility::CrossingEvent& event : events_) {
    reference_.RecordTraversal(event.edge, event.forward, event.time);
  }
}

void SensorNetwork::AppendVirtualBoundary(
    const std::vector<bool>& in_region,
    std::vector<forms::BoundaryEdge>* boundary) const {
  for (graph::NodeId g : gateways_) {
    if (in_region[g]) {
      boundary->push_back({virtual_edge_of_[g], /*inward_is_forward=*/true});
    }
  }
}

std::vector<forms::BoundaryEdge> SensorNetwork::RegionBoundaryWithVirtual(
    const std::vector<bool>& in_region) const {
  std::vector<forms::BoundaryEdge> boundary =
      forms::RegionBoundary(mobility_, in_region);
  AppendVirtualBoundary(in_region, &boundary);
  return boundary;
}

std::vector<graph::NodeId> SensorNetwork::JunctionsInRect(
    const geometry::Rect& rect) const {
  std::vector<size_t> hits = cell_index_->ContainedIn(rect);
  std::sort(hits.begin(), hits.end());
  return std::vector<graph::NodeId>(hits.begin(), hits.end());
}

std::vector<graph::NodeId> SensorNetwork::JunctionsInPolygon(
    const geometry::Polygon& region) const {
  std::vector<graph::NodeId> junctions;
  if (region.size() < 3) return junctions;
  // Candidates from the R-tree (cells inside the polygon's bbox), then the
  // exact concave-safe containment test.
  std::vector<size_t> candidates = cell_index_->ContainedIn(region.Bounds());
  std::sort(candidates.begin(), candidates.end());
  for (size_t n : candidates) {
    if (geometry::PolygonContainsRect(region, cell_bounds_[n])) {
      junctions.push_back(static_cast<graph::NodeId>(n));
    }
  }
  return junctions;
}

std::vector<bool> SensorNetwork::JunctionMask(
    const std::vector<graph::NodeId>& junctions) const {
  std::vector<bool> mask(mobility_.NumNodes(), false);
  for (graph::NodeId n : junctions) {
    INNET_DCHECK(n < mask.size());
    mask[n] = true;
  }
  return mask;
}

double SensorNetwork::GroundTruthStatic(
    const std::vector<graph::NodeId>& junctions, double t) const {
  std::vector<forms::BoundaryEdge> boundary =
      RegionBoundaryWithVirtual(JunctionMask(junctions));
  return forms::EvaluateStaticCount(reference_, boundary, t);
}

double SensorNetwork::GroundTruthTransient(
    const std::vector<graph::NodeId>& junctions, double t0, double t1) const {
  std::vector<forms::BoundaryEdge> boundary =
      RegionBoundaryWithVirtual(JunctionMask(junctions));
  return forms::EvaluateTransientCount(reference_, boundary, t0, t1);
}

}  // namespace innet::core

namespace innet::core {

const char* CountKindName(CountKind kind) {
  return kKindNames[static_cast<int>(kind)];
}

const char* BoundModeName(BoundMode mode) {
  return kBoundNames[static_cast<int>(mode)];
}

}  // namespace innet::core
