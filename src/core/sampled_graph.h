// The sampled sensing graph G̃ (§4.5).
//
// Construction. Selected communication sensors are connected by Delaunay
// triangulation or k-NN; each logical edge is materialized as the shortest
// path between the two sensors in the sensing graph G (never routing through
// the ext node). The union of the traversed sensing edges is the MONITORED
// edge set; shared path nodes are the "intersection" relay sensors of
// Fig. 6b/e. For the query-adaptive mode (§4.4) the monitored set is given
// directly as the boundaries of the selected regions.
//
// Faces. A face of G̃ is a maximal set of junctions mutually reachable
// through roads whose sensing edge is NOT monitored — computed by flood
// fill. Every face of G̃ is therefore a union of faces of G (junction
// cells), and the boundary of any union of G̃ faces consists purely of
// monitored edges, so queries touch monitored sensors only.
#ifndef INNET_CORE_SAMPLED_GRAPH_H_
#define INNET_CORE_SAMPLED_GRAPH_H_

#include <vector>

#include "core/query_workspace.h"
#include "core/sensor_network.h"
#include "forms/region_count.h"
#include "graph/planar_graph.h"

namespace innet::core {

/// How sampled sensors are connected into G̃ (§4.5, Fig. 6).
enum class Connectivity {
  kTriangulation,
  kKnn,
};

/// Construction knobs for the query-oblivious mode.
struct SampledGraphOptions {
  Connectivity connectivity = Connectivity::kTriangulation;
  /// Neighbors per sensor for Connectivity::kKnn.
  size_t knn_k = 3;
};

/// Size/shape statistics of a sampled graph.
struct SampledGraphStats {
  size_t num_comm_sensors = 0;     // Selected communication sensors.
  size_t num_relay_sensors = 0;    // Path-interior (relay) sensors.
  size_t num_monitored_edges = 0;  // Sensing edges carrying tracking forms.
  size_t num_faces = 0;            // Faces of G̃ (junction components).
  size_t simplified_nodes = 0;     // G̃ nodes after degree-2 contraction.
  size_t simplified_edges = 0;     // G̃ edges after degree-2 contraction.
};

/// Immutable sampled graph over a SensorNetwork. Every face/boundary table
/// is precomputed at construction and all query methods are pure const
/// reads, so a frozen SampledGraph is safe to share across query threads.
class SampledGraph {
 public:
  /// Query-oblivious construction from selected sensors (§4.3 + §4.5).
  static SampledGraph FromSensors(const SensorNetwork& network,
                                  std::vector<graph::NodeId> sensors,
                                  const SampledGraphOptions& options);

  /// Query-adaptive construction from an explicit monitored edge set (§4.4).
  static SampledGraph FromMonitoredEdges(
      const SensorNetwork& network,
      const std::vector<graph::EdgeId>& monitored,
      std::vector<graph::NodeId> comm_sensors);

  const SensorNetwork& network() const { return *network_; }

  const std::vector<graph::EdgeId>& monitored_edges() const {
    return monitored_edges_;
  }
  /// Virtual ⋆v_ext edges are monitored by every deployment; real edges per
  /// the sampled construction.
  bool IsMonitored(graph::EdgeId e) const {
    return e >= monitored_mask_.size() || monitored_mask_[e];
  }
  const std::vector<bool>& monitored_mask() const { return monitored_mask_; }

  const std::vector<graph::NodeId>& comm_sensors() const {
    return comm_sensors_;
  }

  /// Face of G̃ containing the given junction's cell.
  uint32_t FaceOfJunction(graph::NodeId junction) const {
    return face_of_junction_[junction];
  }
  uint32_t NumFaces() const { return static_cast<uint32_t>(face_sizes_.size()); }
  size_t FaceSize(uint32_t face) const { return face_sizes_[face]; }

  /// Lower-bound region: faces of G̃ whose junctions all lie in Q_R
  /// (the maximal enclosed region R2 of Fig. 7). Duplicate junctions in
  /// `qr_junctions` are counted once.
  std::vector<uint32_t> LowerBoundFaces(
      const std::vector<graph::NodeId>& qr_junctions) const;

  /// Upper-bound region: faces of G̃ intersecting Q_R (the minimal
  /// containing region R1 of Fig. 7).
  std::vector<uint32_t> UpperBoundFaces(
      const std::vector<graph::NodeId>& qr_junctions) const;

  /// Allocation-free variants: the resolved faces land in `ws.faces`
  /// (ascending face ids, identical to the allocating overloads). Scratch
  /// marks are generation-stamped, so repeated calls through one workspace
  /// never touch the heap once its buffers have grown to the graph.
  void LowerBoundFaces(const std::vector<graph::NodeId>& qr_junctions,
                       QueryWorkspace& ws) const;
  void UpperBoundFaces(const std::vector<graph::NodeId>& qr_junctions,
                       QueryWorkspace& ws) const;

  /// Boundary of a union of G̃ faces: the monitored edges to integrate over
  /// plus the distinct sensors (dual nodes) that must be contacted. The
  /// computation is region-local — it touches only the listed faces'
  /// incident monitored edges, mirroring the in-network dispatch that never
  /// leaves the query region's perimeter.
  struct RegionBoundary {
    std::vector<forms::BoundaryEdge> edges;
    std::vector<graph::NodeId> sensors;
  };
  RegionBoundary BoundaryOfFaces(const std::vector<uint32_t>& faces) const;

  /// Allocation-free variant: fills `ws.boundary_edges` and
  /// `ws.boundary_sensors`. Sensors are deduplicated with stamped marks in
  /// first-encounter order (no per-query sort); edges come back sorted by
  /// edge id — CSR slot order in the frozen store, so the batched boundary
  /// kernels stream it monotonically — and the allocating overload shares
  /// this implementation, hence the same order. `faces` may alias
  /// `ws.faces`.
  void BoundaryOfFaces(const std::vector<uint32_t>& faces,
                       QueryWorkspace& ws) const;

  const SampledGraphStats& stats() const { return stats_; }

 private:
  SampledGraph(const SensorNetwork& network,
               std::vector<graph::NodeId> comm_sensors,
               std::vector<bool> monitored_mask);

  void ComputeFaces();
  void ComputeStats();

  const SensorNetwork* network_;
  std::vector<graph::NodeId> comm_sensors_;
  std::vector<bool> monitored_mask_;
  std::vector<graph::EdgeId> monitored_edges_;
  std::vector<uint32_t> face_of_junction_;
  std::vector<size_t> face_sizes_;
  // Monitored edges incident to each face (boundary edges appear in the
  // lists of both adjacent faces; dangling edges once).
  std::vector<std::vector<graph::EdgeId>> face_edges_;
  // Gateway junctions per face (for ⋆v_ext virtual boundary edges).
  std::vector<std::vector<graph::NodeId>> face_gateways_;
  SampledGraphStats stats_;
};

}  // namespace innet::core

#endif  // INNET_CORE_SAMPLED_GRAPH_H_
