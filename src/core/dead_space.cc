#include "core/dead_space.h"

#include <algorithm>
#include <cmath>

#include "geometry/segment.h"
#include "util/logging.h"

namespace innet::core {

DeadSpaceReport AnalyzeGridDeadSpace(const SensorNetwork& network, size_t nx,
                                     size_t ny) {
  INNET_CHECK(nx >= 1 && ny >= 1);
  const graph::PlanarGraph& mobility = network.mobility();
  const geometry::Rect& domain = network.DomainBounds();
  double cell_w = domain.Width() / static_cast<double>(nx);
  double cell_h = domain.Height() / static_cast<double>(ny);

  auto clamp_index = [](double f, size_t n) {
    long idx = static_cast<long>(f);
    return static_cast<size_t>(
        std::clamp<long>(idx, 0, static_cast<long>(n) - 1));
  };
  auto cell_of = [&](const geometry::Point& p) {
    size_t cx = clamp_index((p.x - domain.min_x) / cell_w, nx);
    size_t cy = clamp_index((p.y - domain.min_y) / cell_h, ny);
    return cy * nx + cx;
  };

  std::vector<bool> has_road(nx * ny, false);
  std::vector<size_t> traffic(nx * ny, 0);

  // Mark road coverage: walk each segment's cell-bbox span and test exact
  // segment-cell intersection for the border cases.
  for (graph::EdgeId e = 0; e < mobility.NumEdges(); ++e) {
    const geometry::Point& a = mobility.Position(mobility.Edge(e).u);
    const geometry::Point& b = mobility.Position(mobility.Edge(e).v);
    geometry::Segment segment(a, b);
    size_t cx0 = clamp_index((std::min(a.x, b.x) - domain.min_x) / cell_w, nx);
    size_t cx1 = clamp_index((std::max(a.x, b.x) - domain.min_x) / cell_w, nx);
    size_t cy0 = clamp_index((std::min(a.y, b.y) - domain.min_y) / cell_h, ny);
    size_t cy1 = clamp_index((std::max(a.y, b.y) - domain.min_y) / cell_h, ny);
    for (size_t cy = cy0; cy <= cy1; ++cy) {
      for (size_t cx = cx0; cx <= cx1; ++cx) {
        if (has_road[cy * nx + cx]) continue;
        geometry::Rect cell(domain.min_x + cx * cell_w,
                            domain.min_y + cy * cell_h,
                            domain.min_x + (cx + 1) * cell_w,
                            domain.min_y + (cy + 1) * cell_h);
        // Endpoint inside, or proper crossing of any cell side.
        bool touches = cell.Contains(a) || cell.Contains(b);
        if (!touches) {
          const geometry::Point corners[4] = {
              {cell.min_x, cell.min_y},
              {cell.max_x, cell.min_y},
              {cell.max_x, cell.max_y},
              {cell.min_x, cell.max_y}};
          for (int s = 0; s < 4 && !touches; ++s) {
            touches = geometry::SegmentsIntersect(
                segment, geometry::Segment(corners[s], corners[(s + 1) % 4]));
          }
        }
        if (touches) has_road[cy * nx + cx] = true;
      }
    }
  }

  // Traffic: events attributed to the cell of their road's midpoint.
  const forms::TrackingForm& store = network.reference_store();
  for (graph::EdgeId e = 0; e < mobility.NumEdges(); ++e) {
    size_t events = store.EventCount(e, true) + store.EventCount(e, false);
    if (events == 0) continue;
    geometry::Point mid = geometry::Midpoint(
        mobility.Position(mobility.Edge(e).u),
        mobility.Position(mobility.Edge(e).v));
    traffic[cell_of(mid)] += events;
  }

  DeadSpaceReport report;
  report.partitions = nx * ny;
  for (size_t c = 0; c < nx * ny; ++c) {
    if (!has_road[c]) ++report.without_roads;
    if (traffic[c] == 0) ++report.without_traffic;
  }
  return report;
}

DeadSpaceReport AnalyzeSensingDeadSpace(const SensorNetwork& network) {
  const graph::PlanarGraph& mobility = network.mobility();
  const forms::TrackingForm& store = network.reference_store();
  std::vector<size_t> traffic(mobility.NumFaces(), 0);
  for (graph::EdgeId e = 0; e < mobility.NumEdges(); ++e) {
    size_t events = store.EventCount(e, true) + store.EventCount(e, false);
    traffic[mobility.Edge(e).left] += events;
    traffic[mobility.Edge(e).right] += events;
  }
  DeadSpaceReport report;
  report.partitions = mobility.NumFaces() - 1;  // Exclude the outer face.
  report.without_roads = 0;  // Every face is bounded by roads.
  for (graph::FaceId f = 0; f < mobility.NumFaces(); ++f) {
    if (f == mobility.OuterFace()) continue;
    if (traffic[f] == 0) ++report.without_traffic;
  }
  return report;
}

}  // namespace innet::core
