// Standing (continuous) range-count subscriptions — the Fig. 1 scenario:
// a cell tower monitors the live number of users in its coverage region as
// crossing events stream in.
//
// A LiveRegionMonitor resolves its region's boundary once, then maintains
// the current count with O(1) work per crossing event: an event on a
// boundary edge adds +1 (inward) or -1 (outward); all other events are
// ignored. This is the streaming counterpart of Theorem 4.1 and matches the
// batch evaluation exactly at every point in time.
#ifndef INNET_CORE_LIVE_MONITOR_H_
#define INNET_CORE_LIVE_MONITOR_H_

#include <unordered_map>
#include <vector>

#include "core/sampled_graph.h"
#include "core/sensor_network.h"
#include "mobility/trajectory.h"

namespace innet::core {

/// Incrementally maintained object count for one fixed region.
class LiveRegionMonitor {
 public:
  /// Exact monitor over the full sensing graph for a junction-cell union.
  LiveRegionMonitor(const SensorNetwork& network,
                    const std::vector<graph::NodeId>& junctions);

  /// Monitor over a sampled graph for a union of G̃ faces (e.g., the
  /// lower/upper approximation of a query region).
  LiveRegionMonitor(const SampledGraph& sampled,
                    const std::vector<uint32_t>& faces);

  /// Feeds the next crossing event (any edge; non-boundary events are
  /// ignored). Events must arrive in non-decreasing time order.
  void OnEvent(const mobility::CrossingEvent& event);

  /// Current number of objects inside the region.
  int64_t CurrentCount() const { return count_; }

  /// Boundary events applied so far (inward plus outward).
  size_t BoundaryEventsSeen() const { return boundary_events_; }

  /// Honest count bounds when each delivery may have been lost with
  /// probability up to `drop_rate_bound` (docs/FAULTS.md): every lost
  /// boundary crossing shifts the running count by ±1, and with A observed
  /// events the expected number lost is A * p / (1 - p). The interval is
  /// the count widened by that bound (floored at 0 below since static
  /// occupancy is nonnegative).
  forms::CountInterval CurrentInterval(double drop_rate_bound) const;

  /// Timestamp of the last event fed (0 before the first).
  double LastEventTime() const { return last_time_; }

  /// Number of boundary edges being watched.
  size_t WatchedEdges() const { return deltas_.size(); }

 private:
  void Watch(const std::vector<forms::BoundaryEdge>& boundary);

  // Count delta applied when the edge is crossed in its canonical forward
  // direction (+1 inward, -1 outward).
  std::unordered_map<graph::EdgeId, int8_t> deltas_;
  int64_t count_ = 0;
  size_t boundary_events_ = 0;
  double last_time_ = 0.0;
};

}  // namespace innet::core

#endif  // INNET_CORE_LIVE_MONITOR_H_
