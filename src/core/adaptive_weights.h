// Query-adaptive sampling weights (§4.3, last paragraph): "use the number of
// times each node appeared in previous queries as the weight". A sensor
// appears in a query when its face touches any junction of the query's
// region, i.e., when it would participate in answering it.
#ifndef INNET_CORE_ADAPTIVE_WEIGHTS_H_
#define INNET_CORE_ADAPTIVE_WEIGHTS_H_

#include <vector>

#include "core/query.h"
#include "core/sensor_network.h"

namespace innet::core {

/// Per-sensor (dual node) selection weights from historical queries:
/// base_weight plus the number of historical queries each sensor appeared
/// in. The ext node always gets weight 0. Feed the result to
/// sampling::SensorSampler::SetWeights to make any sampler query adaptive.
std::vector<double> QueryFrequencyWeights(const SensorNetwork& network,
                                          const std::vector<RangeQuery>& history,
                                          double base_weight = 1.0);

}  // namespace innet::core

#endif  // INNET_CORE_ADAPTIVE_WEIGHTS_H_
