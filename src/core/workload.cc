#include "core/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace innet::core {

std::optional<RangeQuery> GenerateQuery(const SensorNetwork& network,
                                        const WorkloadOptions& options,
                                        util::Rng& rng) {
  INNET_CHECK(options.area_fraction > 0.0 && options.area_fraction <= 1.0);
  const geometry::Rect& domain = network.DomainBounds();
  double target_area = options.area_fraction * network.DomainArea();

  for (int attempt = 0; attempt < options.max_tries; ++attempt) {
    double aspect = rng.Uniform(0.6, 1.7);
    double width = std::sqrt(target_area * aspect);
    double height = target_area / width;
    if (width > domain.Width()) {
      width = domain.Width();
      height = std::min(target_area / width, domain.Height());
    }
    if (height > domain.Height()) {
      height = domain.Height();
      width = std::min(target_area / height, domain.Width());
    }
    double x0 = domain.min_x + rng.Uniform(0.0, domain.Width() - width);
    double y0 = domain.min_y + rng.Uniform(0.0, domain.Height() - height);
    geometry::Rect rect(x0, y0, x0 + width, y0 + height);

    std::vector<graph::NodeId> junctions = network.JunctionsInRect(rect);
    if (junctions.empty()) continue;

    RangeQuery query;
    query.rect = rect;
    query.junctions = std::move(junctions);
    double len = rng.Uniform(options.min_duration_fraction,
                             options.max_duration_fraction) *
                 options.horizon;
    double start = rng.Uniform(0.0, std::max(options.horizon - len, 1e-9));
    query.t1 = start;
    query.t2 = start + len;
    return query;
  }
  return std::nullopt;
}

bool ParseBatchQueryLine(const std::string& line, const SensorNetwork& network,
                         RangeQuery* query, std::string* error) {
  double v[6];
  int consumed = 0;
  if (std::sscanf(line.c_str(), " %lf , %lf , %lf , %lf , %lf , %lf %n",
                  &v[0], &v[1], &v[2], &v[3], &v[4], &v[5],
                  &consumed) != 6 ||
      consumed != static_cast<int>(line.size())) {
    *error = "want x0,y0,x1,y1,t1,t2";
    return false;
  }
  for (double value : v) {
    if (!std::isfinite(value)) {
      *error = "non-finite value";
      return false;
    }
  }
  if (v[5] < v[4]) {
    *error = "t2 < t1";
    return false;
  }
  query->rect = geometry::Rect::FromCorners({v[0], v[1]}, {v[2], v[3]});
  query->junctions = network.JunctionsInRect(query->rect);
  query->t1 = v[4];
  query->t2 = v[5];
  return true;
}

std::vector<RangeQuery> GenerateWorkload(const SensorNetwork& network,
                                         const WorkloadOptions& options,
                                         size_t count, util::Rng& rng) {
  std::vector<RangeQuery> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::optional<RangeQuery> query = GenerateQuery(network, options, rng);
    if (query.has_value()) queries.push_back(std::move(*query));
  }
  return queries;
}

}  // namespace innet::core
