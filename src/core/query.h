// Query and answer types of the framework (§3.3, §4.6).
#ifndef INNET_CORE_QUERY_H_
#define INNET_CORE_QUERY_H_

#include <vector>

#include "forms/region_count.h"
#include "geometry/rect.h"
#include "graph/planar_graph.h"

namespace innet::core {

/// The two count semantics of §3.3.
enum class CountKind {
  /// Number of objects inside the region at the end of the interval
  /// (Thm 4.2 evaluated at t2).
  kStatic,
  /// Net change of the region population over (t1, t2] (Thm 4.3).
  kTransient,
};

/// Region approximation on the sampled graph (§4.6, Fig. 7).
enum class BoundMode {
  /// Maximal sampled region enclosed by the query region (R2).
  kLower,
  /// Minimal sampled region containing the query region (R1).
  kUpper,
};

const char* CountKindName(CountKind kind);
const char* BoundModeName(BoundMode mode);

/// A materialized spatiotemporal range query: the rectangle, the junctions
/// whose sensing cells it contains (the face-union region Q_R on G), and the
/// time interval.
struct RangeQuery {
  geometry::Rect rect;
  std::vector<graph::NodeId> junctions;
  double t1 = 0.0;
  double t2 = 0.0;
};

/// Per-sensor contact cost of the in-network time model. §4.9: "The
/// communication cost dominates the querying cost" — query latency is
/// modeled as local compute plus a fixed cost per sensor contacted.
inline constexpr double kSensorContactMicros = 5.0;

/// Result of answering one query, with the communication-cost accounting
/// used throughout §5.
struct QueryAnswer {
  double estimate = 0.0;
  /// True when no sampled face satisfied the bound mode (§5.5); the estimate
  /// is then 0.
  bool missed = false;
  /// Distinct sensors contacted (perimeter sensors for the sampled graph,
  /// flooded sensors for unsampled/baseline) — Fig. 11c.
  size_t nodes_accessed = 0;
  /// Boundary (monitored) edges read — Fig. 14b.
  size_t edges_accessed = 0;
  /// Wall-clock evaluation compute time.
  double exec_micros = 0.0;

  /// True when the answer was produced in degraded mode: the resolved
  /// boundary touched edges owned by failed sensors and was rerouted
  /// through healthy dual edges (docs/FAULTS.md). The estimate is then the
  /// interval midpoint and `interval` carries the honest bounds.
  bool degraded = false;
  /// Bounds claimed to contain the fault-free count. Fault-free answers
  /// carry the degenerate interval [estimate, estimate].
  forms::CountInterval interval;
  /// Original boundary edges whose owning sensor had failed.
  size_t dead_boundary_edges = 0;
  /// G̃ faces absorbed (outward) plus shed (inward) while rerouting the
  /// boundary around dead sensors.
  size_t rerouted_faces = 0;

  /// Simulated end-to-end query time (Fig. 11d): compute plus the modeled
  /// communication cost of contacting each sensor.
  double SimulatedMicros() const {
    return exec_micros +
           kSensorContactMicros * static_cast<double>(nodes_accessed);
  }
};

}  // namespace innet::core

#endif  // INNET_CORE_QUERY_H_
