#include "core/event_buffer.h"

#include <algorithm>

#include "util/logging.h"

namespace innet::core {

EventReorderBuffer::EventReorderBuffer(double max_lateness, Sink sink)
    : max_lateness_(max_lateness), sink_(std::move(sink)) {
  INNET_CHECK(max_lateness_ >= 0.0);
  INNET_CHECK(sink_ != nullptr);
}

bool EventReorderBuffer::Push(const mobility::CrossingEvent& event) {
  if (event.time < watermark_) {
    ++dropped_;
    return false;
  }
  EventKey key = EventKey::Of(event);
  // A key present in the map is either still buffered (value 1) or was
  // released at exactly the current watermark (value 0); both cases make
  // `event` an exact duplicate delivery.
  if (!pending_keys_.emplace(key, size_t{1}).second) {
    ++duplicates_;
    return false;
  }
  heap_.push(event);
  if (event.time > newest_) newest_ = event.time;
  Release();
  return true;
}

void EventReorderBuffer::Release() {
  // Everything at or before newest - lateness can no longer be preceded by
  // an unseen event.
  double safe = newest_ - max_lateness_;
  while (!heap_.empty() && heap_.top().time <= safe) {
    ReleaseTop();
  }
}

void EventReorderBuffer::ReleaseTop() {
  const mobility::CrossingEvent& event = heap_.top();
  if (event.time != watermark_) {
    // The watermark moves: duplicates of events released at the old
    // watermark are now caught by the `time < watermark_` gate instead.
    for (const EventKey& k : released_at_watermark_) pending_keys_.erase(k);
    released_at_watermark_.clear();
    watermark_ = event.time;
  }
  EventKey key = EventKey::Of(event);
  pending_keys_[key] = 0;
  released_at_watermark_.push_back(key);
  sink_(event);
  heap_.pop();
}

void EventReorderBuffer::Flush() {
  while (!heap_.empty()) {
    ReleaseTop();
  }
  // Close the stream epoch: everything at or before the newest admitted
  // event has been released, so advance the watermark to it even when the
  // heap drained early (or was already empty). A buffer reused after Flush
  // then rejects events behind the released history instead of re-admitting
  // them and corrupting downstream per-edge time order.
  double close = std::max(newest_, watermark_);
  if (close > watermark_) {
    for (const EventKey& k : released_at_watermark_) pending_keys_.erase(k);
    released_at_watermark_.clear();
  }
  newest_ = close;
  watermark_ = close;
}

}  // namespace innet::core
