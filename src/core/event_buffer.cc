#include "core/event_buffer.h"

#include <algorithm>

#include "util/logging.h"

namespace innet::core {

EventReorderBuffer::EventReorderBuffer(double max_lateness, Sink sink)
    : max_lateness_(max_lateness), sink_(std::move(sink)) {
  INNET_CHECK(max_lateness_ >= 0.0);
  INNET_CHECK(sink_ != nullptr);
}

bool EventReorderBuffer::Push(const mobility::CrossingEvent& event) {
  if (event.time < watermark_) {
    ++dropped_;
    return false;
  }
  heap_.push(event);
  if (event.time > newest_) newest_ = event.time;
  Release();
  return true;
}

void EventReorderBuffer::Release() {
  // Everything at or before newest - lateness can no longer be preceded by
  // an unseen event.
  double safe = newest_ - max_lateness_;
  while (!heap_.empty() && heap_.top().time <= safe) {
    watermark_ = heap_.top().time;
    sink_(heap_.top());
    heap_.pop();
  }
}

void EventReorderBuffer::Flush() {
  while (!heap_.empty()) {
    watermark_ = heap_.top().time;
    sink_(heap_.top());
    heap_.pop();
  }
  // Close the stream epoch: everything at or before the newest admitted
  // event has been released, so advance the watermark to it even when the
  // heap drained early (or was already empty). A buffer reused after Flush
  // then rejects events behind the released history instead of re-admitting
  // them and corrupting downstream per-edge time order.
  double close = std::max(newest_, watermark_);
  newest_ = close;
  watermark_ = close;
}

}  // namespace innet::core
