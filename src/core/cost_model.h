// The §4.9 theoretical querying-cost model and its empirical counterpart.
//
// For an approximately uniform sensor distribution, the number of
// sampled-graph nodes a query involves is predicted by
//   |Ñ_P| = (A(Q_R) / A(T_R)) * m * k * ℓ_G
// where m is the number of sampled sensors, k the logical connectivity
// degree (≈ 3 - 6/m for triangulations by Euler's formula, or the chosen k
// for k-NN), and ℓ_G the average shortest-path hop length in the sensing
// graph (sub-linear, logarithmic for small-world graphs). MeasureRegionNodes
// provides the measured quantity for validation benches.
#ifndef INNET_CORE_COST_MODEL_H_
#define INNET_CORE_COST_MODEL_H_

#include "core/sampled_graph.h"
#include "core/sensor_network.h"

namespace innet::core {

/// Inputs of the §4.9 prediction.
struct CostModelParams {
  double area_fraction = 0.0;  // A(Q_R) / A(T_R).
  size_t m = 0;                // Sampled (communication) sensors.
  double k = 3.0;              // Logical connectivity degree.
  double avg_path_hops = 1.0;  // ℓ_G.
};

/// The |Ñ_P| prediction.
double PredictRegionNodes(const CostModelParams& params);

/// Estimates k and ℓ_G for a deployment: k from the connectivity choice
/// (Euler-formula average degree for triangulation, knn_k for k-NN), ℓ_G by
/// sampling `path_samples` random shortest paths in the sensing graph.
CostModelParams EstimateParams(const SensorNetwork& network,
                               const SampledGraphOptions& options, size_t m,
                               double area_fraction,
                               size_t path_samples = 64);

/// Measured counterpart: distinct sensors participating in G̃ whose
/// monitored edges touch the query region (both relays and communication
/// sensors), i.e., the in-network footprint of the region.
size_t MeasureRegionNodes(const SampledGraph& sampled,
                          const std::vector<graph::NodeId>& qr_junctions);

}  // namespace innet::core

#endif  // INNET_CORE_COST_MODEL_H_
