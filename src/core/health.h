// Sensor-health abstraction consumed by the degraded-mode query path.
//
// The sensing layer (src/faults) decides WHICH sensors are trustworthy —
// from injected fault schedules or from observed-vs-expected crossing
// rates — while the query layer only needs a yes/no answer per sensor plus
// a change counter to invalidate cached boundaries. This interface keeps
// that dependency one-directional: core never links against faults.
#ifndef INNET_CORE_HEALTH_H_
#define INNET_CORE_HEALTH_H_

#include <cstddef>
#include <cstdint>

#include "graph/planar_graph.h"

namespace innet::core {

/// Read-only view of per-sensor health. Implemented by
/// faults::SensorHealthMonitor (rate-based detection) and by
/// faults::FaultModel (oracle view of the injected schedule, for benches).
class SensorHealthView {
 public:
  virtual ~SensorHealthView() = default;

  /// True when the sensor's tracking forms must not be trusted (dead or
  /// silent). Sensor ids are dual node ids; the ext node is never failed.
  virtual bool IsFailed(graph::NodeId sensor) const = 0;

  /// Monotone counter bumped on every health-state transition. Consumers
  /// (boundary caches) drop derived state when the generation moves.
  virtual uint64_t Generation() const = 0;
};

/// A view with no failures: degraded answering under it reduces to the
/// fault-free path (useful as a default and in tests).
class AllHealthyView final : public SensorHealthView {
 public:
  bool IsFailed(graph::NodeId) const override { return false; }
  uint64_t Generation() const override { return 0; }
};

/// Knobs of degraded-mode answering: how much slack the reported interval
/// carries beyond the region deformation itself (docs/FAULTS.md).
struct DegradedOptions {
  /// Upper bound on the per-event delivery loss probability of HEALTHY
  /// sensors (message loss). Widens intervals by the expected number of
  /// missed boundary crossings, p/(1-p) per observed crossing.
  double drop_rate_bound = 0.0;

  /// Bound on per-sensor clock skew (seconds). Crossings within the skew
  /// window of a query endpoint may land on the wrong side of it; the
  /// interval widens by their count.
  double clock_skew_bound = 0.0;

  /// Expected crossings/second per dead boundary edge, used to widen
  /// TRANSIENT intervals for traffic the dead sensors never reported
  /// (typically the health monitor's calibrated mean rate). Static
  /// intervals do not need it — deformation already brackets them.
  double dead_edge_rate_bound = 0.0;

  /// Safety cap on boundary-rerouting steps (faces absorbed or shed per
  /// direction). 0 means no cap beyond the face count.
  size_t max_deformation_faces = 0;
};

}  // namespace innet::core

#endif  // INNET_CORE_HEALTH_H_
