#include "core/cost_model.h"

#include <algorithm>

#include "graph/shortest_path.h"
#include "util/logging.h"

namespace innet::core {

double PredictRegionNodes(const CostModelParams& params) {
  return params.area_fraction * static_cast<double>(params.m) * params.k *
         params.avg_path_hops;
}

CostModelParams EstimateParams(const SensorNetwork& network,
                               const SampledGraphOptions& options, size_t m,
                               double area_fraction, size_t path_samples) {
  CostModelParams params;
  params.area_fraction = area_fraction;
  params.m = m;
  if (options.connectivity == Connectivity::kTriangulation) {
    // Euler: |Ẽ| = 3|Ñ| - 6 for a maximal planar graph, so the average
    // degree is 2|Ẽ|/|Ñ| per endpoint; one logical edge per pair gives
    // k = (3m - 6)/m.
    params.k = m > 2 ? (3.0 * static_cast<double>(m) - 6.0) /
                           static_cast<double>(m)
                     : 1.0;
  } else {
    params.k = static_cast<double>(options.knn_k);
  }
  params.avg_path_hops = graph::EstimateAveragePathHops(
      network.sensing().adjacency(), path_samples, /*seed=*/1234);
  // Logical links are shared between the two endpoints, halving the
  // per-node path footprint.
  params.k *= 0.5;
  return params;
}

size_t MeasureRegionNodes(const SampledGraph& sampled,
                          const std::vector<graph::NodeId>& qr_junctions) {
  const graph::PlanarGraph& mobility = sampled.network().mobility();
  std::vector<bool> in_region = sampled.network().JunctionMask(qr_junctions);
  std::vector<bool> seen(sampled.network().sensing().NumNodes(), false);
  size_t count = 0;
  for (graph::EdgeId e : sampled.monitored_edges()) {
    const graph::EdgeRecord& rec = mobility.Edge(e);
    if (!in_region[rec.u] && !in_region[rec.v]) continue;
    for (graph::NodeId s : {rec.left, rec.right}) {
      if (!seen[s]) {
        seen[s] = true;
        ++count;
      }
    }
  }
  return count;
}

}  // namespace innet::core
