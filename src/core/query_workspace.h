// Per-thread scratch space for the resolve-and-integrate query hot path.
//
// Answering one range query used to heap-allocate half a dozen transient
// vectors: the per-face hit counts of Lower/UpperBoundFaces, the boundary
// edge and sensor lists of BoundaryOfFaces, the junction mask and flooded-
// sensor set of the unsampled processor. A QueryWorkspace owns all of that
// scratch once; repeated queries through the same workspace reuse the
// retained capacity, so the steady-state per-query allocation count is ZERO
// (pinned by tests/workspace_test.cc via util/alloc_probe.h).
//
// Membership marks are GENERATION-STAMPED: instead of clearing an
// O(domain) array per query, each primitive bumps the workspace generation
// and treats an entry as "set" only when its stamp equals the current
// generation. A bump is O(1); the arrays are cleared only on the (once per
// 2^32 operations) generation wrap.
//
// Thread safety: a workspace is mutable scratch — one thread at a time.
// Use one workspace per worker thread (runtime::BatchQueryEngine does this
// via LocalWorkspace()); results are independent of workspace history, so
// any thread-to-workspace assignment yields bit-identical answers.
#ifndef INNET_CORE_QUERY_WORKSPACE_H_
#define INNET_CORE_QUERY_WORKSPACE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "forms/region_count.h"
#include "graph/planar_graph.h"
#include "obs/query_cost.h"

namespace innet::core {

class QueryWorkspace {
 public:
  /// Starts a new stamped operation: bumps and returns the generation every
  /// mark array compares against. Wraparound resets the arrays.
  uint32_t NextGeneration() {
    if (++generation_ == 0) {
      std::fill(face_stamp_.begin(), face_stamp_.end(), 0u);
      std::fill(junction_stamp_.begin(), junction_stamp_.end(), 0u);
      std::fill(sensor_stamp_.begin(), sensor_stamp_.end(), 0u);
      generation_ = 1;
    }
    return generation_;
  }

  /// Grows the stamped domains to cover `faces` face ids, `junctions`
  /// mobility nodes, and `sensors` dual nodes. Amortized: reallocates only
  /// when a larger graph is seen.
  void EnsureDomains(size_t faces, size_t junctions, size_t sensors) {
    if (face_stamp_.size() < faces) {
      face_stamp_.resize(faces, 0);
      face_count_.resize(faces, 0);
    }
    if (junction_stamp_.size() < junctions) junction_stamp_.resize(junctions, 0);
    if (sensor_stamp_.size() < sensors) sensor_stamp_.resize(sensors, 0);
  }

  // --- Stamped marks (valid while the stamp equals NextGeneration()'s
  // return value; callers hold that value for the operation's duration). ---
  std::vector<uint32_t>& face_stamp() { return face_stamp_; }
  std::vector<uint32_t>& face_count() { return face_count_; }
  std::vector<uint32_t>& junction_stamp() { return junction_stamp_; }
  std::vector<uint32_t>& sensor_stamp() { return sensor_stamp_; }

  // --- Reusable result buffers. Each primitive clears (size, not
  // capacity) the buffer it fills; contents stay valid until the same
  // buffer is reused. ---

  /// Resolved face list (Lower/UpperBoundFaces output).
  std::vector<uint32_t> faces;
  /// Region boundary (BoundaryOfFaces / unsampled boundary output).
  std::vector<forms::BoundaryEdge> boundary_edges;
  std::vector<graph::NodeId> boundary_sensors;
  /// AnswerSeries output buffer.
  std::vector<double> series;

  /// Cost account of the LAST query answered through this workspace
  /// (docs/OBSERVABILITY.md §9). The processors overwrite it wholesale per
  /// Answer* call — plain stores into retained storage, so profiling adds
  /// zero allocations to the warm path. Valid until the next query reuses
  /// the workspace.
  obs::QueryCostProfile cost;

 private:
  uint32_t generation_ = 0;
  std::vector<uint32_t> face_stamp_;
  std::vector<uint32_t> face_count_;
  std::vector<uint32_t> junction_stamp_;
  std::vector<uint32_t> sensor_stamp_;
};

/// The calling thread's lazily-constructed workspace. Query paths that are
/// not handed an explicit workspace fall back to this, so single-threaded
/// tools and tests get the zero-allocation steady state for free. The
/// reference is valid for the thread's lifetime.
QueryWorkspace& LocalWorkspace();

}  // namespace innet::core

#endif  // INNET_CORE_QUERY_WORKSPACE_H_
