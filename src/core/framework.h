// Framework facade: builds the whole in-network system (domain, traffic,
// sensing graph, event ingest) and deploys sampled configurations with
// exact or learned stores. This is the top-level entry point used by the
// examples and benchmark harnesses.
#ifndef INNET_CORE_FRAMEWORK_H_
#define INNET_CORE_FRAMEWORK_H_

#include <memory>
#include <vector>

#include "core/query.h"
#include "core/query_processor.h"
#include "core/sampled_graph.h"
#include "core/sensor_network.h"
#include "learned/buffered_edge_store.h"
#include "mobility/road_network.h"
#include "mobility/trajectory.h"
#include "mobility/trajectory_generator.h"
#include "sampling/sampler.h"
#include "util/rng.h"

namespace innet::core {

/// Which per-edge store a deployment uses (§4.7 vs §4.8).
enum class StoreKind {
  kExact,    // TrackingForm: full timestamp sequences.
  kLearned,  // BufferedEdgeStore: regression models + bounded buffer.
};

/// Per-deployment knobs.
struct DeploymentOptions {
  SampledGraphOptions graph;
  StoreKind store = StoreKind::kExact;
  learned::ModelType model_type = learned::ModelType::kLinear;
  size_t buffer_capacity = 32;
  double pla_epsilon = 8.0;
};

/// A deployed sampled configuration: the sampled graph plus its ingested
/// per-edge store. Monitored edges only are stored — the storage saving of
/// sampling.
class Deployment {
 public:
  Deployment(const SensorNetwork& network, SampledGraph graph,
             const DeploymentOptions& options, double time_scale);

  const SampledGraph& graph() const { return graph_; }
  const forms::EdgeCountStore& store() const { return *store_view_; }

  /// The underlying exact tracking form, or nullptr for a learned-store
  /// deployment. Callers freeze it (TrackingForm::Freeze) to build the
  /// read-optimized query path — see docs/PERFORMANCE.md.
  const forms::TrackingForm* tracking_store() const {
    return exact_store_.get();
  }

  /// Processor bound to this deployment (cheap to construct).
  SampledQueryProcessor processor() const {
    return SampledQueryProcessor(graph_, *store_view_);
  }

  /// Bytes of per-edge tracking state held across all monitored edges.
  size_t StorageBytes() const { return store_view_->StorageBytes(); }

 private:
  SampledGraph graph_;
  std::unique_ptr<forms::TrackingForm> exact_store_;
  std::unique_ptr<learned::BufferedEdgeStore> learned_store_;
  const forms::EdgeCountStore* store_view_ = nullptr;
};

/// End-to-end system builder.
struct FrameworkOptions {
  mobility::RoadNetworkOptions road;
  mobility::TrajectoryOptions traffic;
  uint64_t seed = 42;
};

class Framework {
 public:
  explicit Framework(const FrameworkOptions& options);

  const SensorNetwork& network() const { return *network_; }
  const std::vector<mobility::Trajectory>& trajectories() const {
    return trajectories_;
  }

  /// The configured traffic horizon (time intervals are drawn within it).
  double Horizon() const { return options_.traffic.horizon; }

  /// Fresh deterministic RNG stream derived from the framework seed.
  util::Rng ForkRng() { return rng_.Fork(); }

  /// Deploys a query-oblivious configuration with `m` sensors chosen by
  /// `sampler` (§4.3 + §4.5).
  Deployment DeployWithSampler(const sampling::SensorSampler& sampler,
                               size_t m, const DeploymentOptions& options,
                               util::Rng& rng) const;

  /// Deploys with an explicit sensor set.
  Deployment DeployFromSensors(std::vector<graph::NodeId> sensors,
                               const DeploymentOptions& options) const;

  /// Deploys the query-adaptive configuration (§4.4) from historical query
  /// regions under a sensor budget of `m`.
  Deployment DeployAdaptive(const std::vector<RangeQuery>& history, size_t m,
                            const DeploymentOptions& options) const;

 private:
  FrameworkOptions options_;
  util::Rng rng_;
  std::unique_ptr<SensorNetwork> network_;
  std::vector<mobility::Trajectory> trajectories_;
};

}  // namespace innet::core

#endif  // INNET_CORE_FRAMEWORK_H_
