// Budget planning with accuracy targets — the paper's closing future-work
// item ("sensor placements with guaranteed query accuracy bounds"): find the
// smallest sensor budget whose measured median error on a representative
// workload meets a target.
//
// Median lower-bound error is empirically monotone (non-increasing) in the
// budget, so an exponential probe followed by binary search needs
// O(log m_max) deployment evaluations.
#ifndef INNET_CORE_BUDGET_PLANNER_H_
#define INNET_CORE_BUDGET_PLANNER_H_

#include <utility>
#include <vector>

#include "core/framework.h"
#include "core/query.h"
#include "sampling/sampler.h"

namespace innet::core {

/// Planner knobs.
struct BudgetPlanOptions {
  /// Target median relative error (lower-bound static counts).
  double target_error = 0.15;

  /// Sampler seeds averaged per evaluation.
  size_t reps = 2;

  /// Smallest / largest budgets considered (0 = all sensors for max).
  size_t min_budget = 4;
  size_t max_budget = 0;

  DeploymentOptions deployment;
};

/// Planner result.
struct BudgetPlan {
  /// Smallest probed budget meeting the target, or 0 when even the maximum
  /// budget misses it.
  size_t recommended_budget = 0;

  /// Measured median error at the recommended budget (or at max_budget when
  /// the target is unreachable).
  double achieved_error = 1.0;

  /// (budget, median error) pairs evaluated, in evaluation order.
  std::vector<std::pair<size_t, double>> probes;

  bool feasible = false;
};

/// Evaluates median lower-bound static error of `sampler` at budget m on
/// `queries` (exposed for tests and tools).
double MeasureMedianError(const Framework& framework,
                          const sampling::SensorSampler& sampler, size_t m,
                          const std::vector<RangeQuery>& queries,
                          const DeploymentOptions& deployment, size_t reps);

/// Finds the smallest budget meeting options.target_error for the given
/// sampler and representative workload.
BudgetPlan PlanBudget(const Framework& framework,
                      const sampling::SensorSampler& sampler,
                      const std::vector<RangeQuery>& queries,
                      const BudgetPlanOptions& options);

}  // namespace innet::core

#endif  // INNET_CORE_BUDGET_PLANNER_H_
