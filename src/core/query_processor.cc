#include "core/query_processor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/degraded.h"
#include "forms/region_count.h"
#include "obs/metrics.h"
#include "obs/query_cost.h"
#include "util/logging.h"
#include "util/timer.h"

namespace innet::core {

namespace {

// Cost-profile store classification: 0 = exact tracking forms, 1 =
// anything modeled ("learned", private, ...). Resolved once at
// construction; the warm path never calls Provenance().
uint8_t StoreKindOf(const forms::EdgeCountStore& store) {
  return std::strcmp(store.Provenance().kind, "exact") == 0 ? 0 : 1;
}

uint64_t Nanos(const util::Timer& timer) {
  return static_cast<uint64_t>(timer.ElapsedMicros() * 1000.0);
}

// Stored CSR timestamps under a boundary: both directions of every
// boundary edge. O(#edges) loads against the frozen form's row pointers.
uint64_t StoredTimestamps(const forms::FrozenTrackingForm& frozen,
                          const std::vector<forms::BoundaryEdge>& edges) {
  uint64_t timestamps = 0;
  for (const forms::BoundaryEdge& e : edges) {
    timestamps += frozen.EventCount(e.edge, true);
    timestamps += frozen.EventCount(e.edge, false);
  }
  return timestamps;
}

// Processor-level metrics live in the global registry; the reference is
// resolved once (thread-safe local static) and incremented lock-free.
obs::Counter& ProcessorQueries() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "innet_processor_queries",
      "Queries answered by SampledQueryProcessor");
  return counter;
}

obs::Counter& ProcessorMissed() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "innet_processor_missed",
      "SampledQueryProcessor queries with no satisfying sampled face");
  return counter;
}

obs::Counter& ProcessorDegraded() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "innet_processor_degraded_answers",
      "SampledQueryProcessor queries answered in degraded mode");
  return counter;
}

obs::Counter& UnsampledQueries() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "innet_unsampled_queries",
      "Queries answered by UnsampledQueryProcessor");
  return counter;
}

}  // namespace

void FillExplainResolution(const SampledGraph& sampled,
                           const RangeQuery& query, CountKind kind,
                           BoundMode bound,
                           const std::vector<uint32_t>& faces,
                           const forms::EdgeCountStore& store,
                           obs::ExplainRecord* explain) {
  explain->kind = CountKindName(kind);
  explain->bound = BoundModeName(bound);
  explain->path = "sampled";
  explain->faces = faces;
  std::sort(explain->faces.begin(), explain->faces.end());
  explain->region_cells = query.junctions.size();
  explain->resolved_cells = 0;
  for (uint32_t face : faces) {
    explain->resolved_cells += sampled.FaceSize(face);
  }
  // Lower bounds cover a subset of Q_R's cells, upper bounds a superset;
  // either way the symmetric difference is |resolved - region|.
  explain->deadspace_fraction =
      explain->region_cells == 0
          ? 0.0
          : std::abs(static_cast<double>(explain->resolved_cells) -
                     static_cast<double>(explain->region_cells)) /
                static_cast<double>(explain->region_cells);
  forms::StoreProvenance provenance = store.Provenance();
  explain->store = provenance.kind;
  explain->store_modeled_events = provenance.modeled_events;
  explain->store_raw_events = provenance.raw_events;
}

void FillExplainAnswer(const QueryAnswer& answer,
                       obs::ExplainRecord* explain) {
  explain->missed = answer.missed;
  explain->degraded = answer.degraded;
  explain->answer = answer.estimate;
  explain->interval_lo = answer.interval.lo;
  explain->interval_hi = answer.interval.hi;
  explain->interval_width = answer.interval.Width();
  explain->boundary_edges = answer.edges_accessed;
  explain->boundary_sensors = answer.nodes_accessed;
  explain->dead_boundary_edges = answer.dead_boundary_edges;
  explain->rerouted_faces = answer.rerouted_faces;
}

SampledQueryProcessor::SampledQueryProcessor(
    const SampledGraph& sampled, const forms::EdgeCountStore& store)
    : sampled_(&sampled),
      store_(&store),
      frozen_(dynamic_cast<const forms::FrozenTrackingForm*>(&store)),
      store_kind_(StoreKindOf(store)),
      total_cells_(sampled.network().mobility().NumNodes()) {}

SampledQueryProcessor::SampledQueryProcessor(
    const SampledGraph& sampled, const forms::FrozenStoreHandle& handle)
    : sampled_(&sampled),
      handle_(&handle),
      total_cells_(sampled.network().mobility().NumNodes()) {
  snapshot_ = handle.Acquire();
  INNET_CHECK(snapshot_.store != nullptr);
  frozen_ = snapshot_.store.get();
  store_ = frozen_;
  store_kind_ = StoreKindOf(*store_);
}

void SampledQueryProcessor::RefreshStore() const {
  if (handle_ == nullptr) return;
  if (handle_->Generation() == snapshot_.generation) return;
  snapshot_ = handle_->Acquire();
  frozen_ = snapshot_.store.get();
  store_ = frozen_;
}

QueryAnswer SampledQueryProcessor::Answer(const RangeQuery& query,
                                          CountKind kind, BoundMode bound,
                                          obs::QueryTrace* trace,
                                          obs::ExplainRecord* explain,
                                          QueryWorkspace* workspace) const {
  RefreshStore();
  util::Timer timer;
  QueryAnswer answer;
  ProcessorQueries().Increment();
  QueryWorkspace& ws = workspace != nullptr ? *workspace : LocalWorkspace();
  obs::QueryCostProfile& cost = ws.cost;
  cost = obs::QueryCostProfile{};
  cost.kind = kind == CountKind::kStatic ? 0 : 1;
  cost.bound = bound == BoundMode::kLower ? 0 : 1;
  cost.store_kind = store_kind_;
  cost.region_junctions = query.junctions.size();
  cost.region_decile =
      static_cast<uint8_t>(obs::RegionSizeDecile(query.junctions.size(),
                                                 total_cells_));
  cost.store_generation = snapshot_.generation;

  {
    obs::Span span(trace, "boundary_resolution");
    if (bound == BoundMode::kLower) {
      sampled_->LowerBoundFaces(query.junctions, ws);
    } else {
      sampled_->UpperBoundFaces(query.junctions, ws);
    }
    if (explain != nullptr) {
      FillExplainResolution(*sampled_, query, kind, bound, ws.faces, *store_,
                            explain);
    }
    if (ws.faces.empty()) {
      answer.missed = true;
      answer.exec_micros = timer.ElapsedMicros();
      cost.missed = true;
      cost.resolve_nanos = Nanos(timer);
      cost.total_nanos = cost.resolve_nanos;
      ProcessorMissed().Increment();
      if (trace != nullptr) trace->Annotate("missed", 1.0);
      if (explain != nullptr) FillExplainAnswer(answer, explain);
      return answer;
    }
    sampled_->BoundaryOfFaces(ws.faces, ws);
  }
  cost.resolve_nanos = Nanos(timer);

  {
    obs::Span span(trace, "form_integration");
    // Devirtualized fused kernels when the store is frozen; the virtual
    // per-edge path otherwise. Identical arithmetic either way.
    if (kind == CountKind::kStatic) {
      answer.estimate =
          frozen_ != nullptr
              ? forms::EvaluateStaticCount(*frozen_, ws.boundary_edges,
                                           query.t2)
              : forms::EvaluateStaticCount(*store_, ws.boundary_edges,
                                           query.t2);
    } else {
      answer.estimate =
          frozen_ != nullptr
              ? forms::EvaluateTransientCount(*frozen_, ws.boundary_edges,
                                              query.t1, query.t2)
              : forms::EvaluateTransientCount(*store_, ws.boundary_edges,
                                              query.t1, query.t2);
    }
  }
  answer.interval = forms::CountInterval::Point(answer.estimate);
  answer.nodes_accessed = ws.boundary_sensors.size();
  answer.edges_accessed = ws.boundary_edges.size();
  answer.exec_micros = timer.ElapsedMicros();
  cost.faces_resolved = static_cast<uint32_t>(ws.faces.size());
  cost.boundary_edges = ws.boundary_edges.size();
  cost.boundary_sensors = ws.boundary_sensors.size();
  if (frozen_ != nullptr) {
    cost.csr_timestamps = StoredTimestamps(*frozen_, ws.boundary_edges);
    // Two directed slots per boundary edge, probed once per evaluation
    // instant (static: t2; transient: t1 and t2).
    cost.bucket_probes = ws.boundary_edges.size() * 2 *
                         (kind == CountKind::kTransient ? 2 : 1);
  }
  cost.total_nanos = Nanos(timer);
  cost.integrate_nanos = cost.total_nanos - cost.resolve_nanos;
  if (trace != nullptr) trace->Annotate("estimate", answer.estimate);
  if (explain != nullptr) FillExplainAnswer(answer, explain);
  return answer;
}

QueryAnswer SampledQueryProcessor::AnswerDegraded(
    const RangeQuery& query, CountKind kind, BoundMode bound,
    const SensorHealthView& health, const DegradedOptions& options,
    obs::QueryTrace* trace, obs::ExplainRecord* explain) const {
  RefreshStore();
  util::Timer timer;
  ProcessorQueries().Increment();
  QueryWorkspace& ws = LocalWorkspace();
  obs::QueryCostProfile& cost = ws.cost;
  cost = obs::QueryCostProfile{};
  cost.kind = kind == CountKind::kStatic ? 0 : 1;
  cost.bound = bound == BoundMode::kLower ? 0 : 1;
  cost.store_kind = store_kind_;
  cost.region_junctions = query.junctions.size();
  cost.region_decile =
      static_cast<uint8_t>(obs::RegionSizeDecile(query.junctions.size(),
                                                 total_cells_));
  cost.store_generation = snapshot_.generation;
  DegradedBoundary resolved;
  {
    obs::Span span(trace, "degraded_reroute");
    if (bound == BoundMode::kLower) {
      sampled_->LowerBoundFaces(query.junctions, ws);
    } else {
      sampled_->UpperBoundFaces(query.junctions, ws);
    }
    if (explain != nullptr) {
      FillExplainResolution(*sampled_, query, kind, bound, ws.faces, *store_,
                            explain);
    }
    resolved = ResolveDegradedBoundary(*sampled_, ws.faces, health, options);
  }
  cost.resolve_nanos = Nanos(timer);
  QueryAnswer answer;
  {
    obs::Span span(trace, "degraded_answer");
    answer =
        AnswerFromDegradedBoundary(*store_, resolved, query, kind, options);
  }
  if (answer.missed) ProcessorMissed().Increment();
  if (answer.degraded) ProcessorDegraded().Increment();
  answer.exec_micros = timer.ElapsedMicros();
  cost.missed = answer.missed;
  cost.degraded = answer.degraded;
  cost.path = answer.degraded ? obs::QueryPathKind::kDegraded
                              : obs::QueryPathKind::kUncached;
  cost.faces_resolved = static_cast<uint32_t>(ws.faces.size());
  cost.boundary_edges = resolved.boundary.edges.size();
  cost.boundary_sensors = resolved.boundary.sensors.size();
  if (frozen_ != nullptr) {
    cost.csr_timestamps = StoredTimestamps(*frozen_, resolved.boundary.edges);
    cost.bucket_probes = resolved.boundary.edges.size() * 2 *
                         (kind == CountKind::kTransient ? 2 : 1);
  }
  cost.total_nanos = Nanos(timer);
  cost.integrate_nanos = cost.total_nanos - cost.resolve_nanos;
  if (explain != nullptr) {
    FillExplainAnswer(answer, explain);
    if (answer.degraded) explain->path = "degraded";
  }
  return answer;
}

std::vector<double> SampledQueryProcessor::AnswerSeries(
    const RangeQuery& query, BoundMode bound, size_t steps) const {
  RefreshStore();
  INNET_CHECK(query.t2 >= query.t1);
  if (steps == 0) return {};
  util::Timer timer;
  QueryWorkspace& ws = LocalWorkspace();
  obs::QueryCostProfile& cost = ws.cost;
  cost = obs::QueryCostProfile{};
  cost.bound = bound == BoundMode::kLower ? 0 : 1;
  cost.store_kind = store_kind_;
  cost.region_junctions = query.junctions.size();
  cost.region_decile =
      static_cast<uint8_t>(obs::RegionSizeDecile(query.junctions.size(),
                                                 total_cells_));
  cost.store_generation = snapshot_.generation;
  if (bound == BoundMode::kLower) {
    sampled_->LowerBoundFaces(query.junctions, ws);
  } else {
    sampled_->UpperBoundFaces(query.junctions, ws);
  }
  if (ws.faces.empty()) {
    cost.missed = true;
    cost.resolve_nanos = Nanos(timer);
    cost.total_nanos = cost.resolve_nanos;
    return {};
  }
  sampled_->BoundaryOfFaces(ws.faces, ws);
  cost.resolve_nanos = Nanos(timer);

  // Evaluation instants (ascending): steps == 1 degenerates to the
  // interval start; otherwise endpoints inclusive.
  ws.series.resize(steps);
  if (steps == 1) {
    ws.series[0] = query.t1;
  } else {
    double span = query.t2 - query.t1;
    for (size_t i = 0; i < steps; ++i) {
      ws.series[i] = query.t1 + span * static_cast<double>(i) /
                                    static_cast<double>(steps - 1);
    }
  }

  std::vector<double> series(steps, 0.0);
  if (frozen_ != nullptr) {
    // One merge pass per boundary edge over the whole instant batch.
    forms::EvaluateStaticCountBatch(*frozen_, ws.boundary_edges,
                                    ws.series.data(), steps, series.data());
  } else {
    for (size_t i = 0; i < steps; ++i) {
      series[i] =
          forms::EvaluateStaticCount(*store_, ws.boundary_edges, ws.series[i]);
    }
  }
  cost.faces_resolved = static_cast<uint32_t>(ws.faces.size());
  cost.boundary_edges = ws.boundary_edges.size();
  cost.boundary_sensors = ws.boundary_sensors.size();
  if (frozen_ != nullptr) {
    cost.csr_timestamps = StoredTimestamps(*frozen_, ws.boundary_edges);
    // The batch kernel probes each boundary slot once per instant.
    cost.bucket_probes = ws.boundary_edges.size() * 2 * steps;
  }
  cost.total_nanos = Nanos(timer);
  cost.integrate_nanos = cost.total_nanos - cost.resolve_nanos;
  return series;
}

QueryAnswer UnsampledQueryProcessor::Answer(const RangeQuery& query,
                                            CountKind kind,
                                            obs::ExplainRecord* explain,
                                            QueryWorkspace* workspace) const {
  util::Timer timer;
  QueryAnswer answer;
  UnsampledQueries().Increment();
  const graph::PlanarGraph& mobility = network_->mobility();
  QueryWorkspace& ws = workspace != nullptr ? *workspace : LocalWorkspace();
  ws.EnsureDomains(0, mobility.NumNodes(), network_->sensing().NumNodes());
  uint32_t gen = ws.NextGeneration();
  obs::QueryCostProfile& cost = ws.cost;
  cost = obs::QueryCostProfile{};
  cost.kind = kind == CountKind::kStatic ? 0 : 1;
  cost.bound = 2;  // exact
  cost.store_kind = StoreKindOf(network_->reference_store());
  cost.region_junctions = query.junctions.size();
  cost.region_decile = static_cast<uint8_t>(
      obs::RegionSizeDecile(query.junctions.size(), mobility.NumNodes()));

  // Region-local boundary extraction: walk the in-region junctions'
  // adjacency only (the work an in-network dispatch actually performs).
  // Every boundary edge is found exactly once, from its inside endpoint.
  // The membership mask is a generation-stamped scratch array, not a fresh
  // per-query vector<bool>.
  std::vector<uint32_t>& junction_stamp = ws.junction_stamp();
  for (graph::NodeId u : query.junctions) junction_stamp[u] = gen;
  ws.boundary_edges.clear();
  for (graph::NodeId u : query.junctions) {
    for (const graph::Neighbor& nb : mobility.NeighborsOf(u)) {
      if (junction_stamp[nb.node] == gen) continue;
      ws.boundary_edges.push_back(
          {nb.edge, /*inward_is_forward=*/mobility.Edge(nb.edge).v == u});
    }
    if (network_->gateway_mask()[u]) {
      ws.boundary_edges.push_back(
          {network_->VirtualEdgeOf(u), /*inward_is_forward=*/true});
    }
  }
  cost.resolve_nanos = Nanos(timer);
  answer.estimate =
      kind == CountKind::kStatic
          ? forms::EvaluateStaticCount(network_->reference_store(),
                                       ws.boundary_edges, query.t2)
          : forms::EvaluateTransientCount(network_->reference_store(),
                                          ws.boundary_edges, query.t1,
                                          query.t2);
  answer.interval = forms::CountInterval::Point(answer.estimate);
  answer.edges_accessed = ws.boundary_edges.size();
  cost.integrate_nanos = Nanos(timer) - cost.resolve_nanos;

  // Flooding cost: every sensor whose face touches a junction of the region
  // participates in the in-network aggregation. Stamped dedup — the same
  // generation works because sensor marks live in their own array.
  std::vector<uint32_t>& sensor_stamp = ws.sensor_stamp();
  size_t sensors = 0;
  for (graph::NodeId n : query.junctions) {
    // Inline FacesAroundNode: the face left of each half-edge leaving n
    // (that call materializes a vector per junction; this walk does not).
    for (const graph::Neighbor& nb : mobility.NeighborsOf(n)) {
      uint32_t h = mobility.Edge(nb.edge).u == n
                       ? (nb.edge << 1)
                       : ((nb.edge << 1) | 1);
      graph::FaceId f = mobility.FaceOfHalfEdge(h);
      if (sensor_stamp[f] != gen) {
        sensor_stamp[f] = gen;
        ++sensors;
      }
    }
  }
  answer.nodes_accessed = sensors;
  answer.exec_micros = timer.ElapsedMicros();
  cost.boundary_edges = ws.boundary_edges.size();
  cost.boundary_sensors = sensors;
  cost.total_nanos = Nanos(timer);
  if (explain != nullptr) {
    explain->kind = CountKindName(kind);
    explain->bound = "exact";
    explain->path = "unsampled";
    explain->region_cells = query.junctions.size();
    explain->resolved_cells = query.junctions.size();
    explain->deadspace_fraction = 0.0;
    forms::StoreProvenance provenance =
        network_->reference_store().Provenance();
    explain->store = provenance.kind;
    explain->store_modeled_events = provenance.modeled_events;
    explain->store_raw_events = provenance.raw_events;
    FillExplainAnswer(answer, explain);
  }
  return answer;
}

}  // namespace innet::core
