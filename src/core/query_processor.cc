#include "core/query_processor.h"

#include <algorithm>
#include <cmath>

#include "core/degraded.h"
#include "forms/region_count.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/timer.h"

namespace innet::core {

namespace {

// Processor-level metrics live in the global registry; the reference is
// resolved once (thread-safe local static) and incremented lock-free.
obs::Counter& ProcessorQueries() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "innet_processor_queries",
      "Queries answered by SampledQueryProcessor");
  return counter;
}

obs::Counter& ProcessorMissed() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "innet_processor_missed",
      "SampledQueryProcessor queries with no satisfying sampled face");
  return counter;
}

obs::Counter& ProcessorDegraded() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "innet_processor_degraded_answers",
      "SampledQueryProcessor queries answered in degraded mode");
  return counter;
}

obs::Counter& UnsampledQueries() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "innet_unsampled_queries",
      "Queries answered by UnsampledQueryProcessor");
  return counter;
}

}  // namespace

void FillExplainResolution(const SampledGraph& sampled,
                           const RangeQuery& query, CountKind kind,
                           BoundMode bound,
                           const std::vector<uint32_t>& faces,
                           const forms::EdgeCountStore& store,
                           obs::ExplainRecord* explain) {
  explain->kind = CountKindName(kind);
  explain->bound = BoundModeName(bound);
  explain->path = "sampled";
  explain->faces = faces;
  std::sort(explain->faces.begin(), explain->faces.end());
  explain->region_cells = query.junctions.size();
  explain->resolved_cells = 0;
  for (uint32_t face : faces) {
    explain->resolved_cells += sampled.FaceSize(face);
  }
  // Lower bounds cover a subset of Q_R's cells, upper bounds a superset;
  // either way the symmetric difference is |resolved - region|.
  explain->deadspace_fraction =
      explain->region_cells == 0
          ? 0.0
          : std::abs(static_cast<double>(explain->resolved_cells) -
                     static_cast<double>(explain->region_cells)) /
                static_cast<double>(explain->region_cells);
  forms::StoreProvenance provenance = store.Provenance();
  explain->store = provenance.kind;
  explain->store_modeled_events = provenance.modeled_events;
  explain->store_raw_events = provenance.raw_events;
}

void FillExplainAnswer(const QueryAnswer& answer,
                       obs::ExplainRecord* explain) {
  explain->missed = answer.missed;
  explain->degraded = answer.degraded;
  explain->answer = answer.estimate;
  explain->interval_lo = answer.interval.lo;
  explain->interval_hi = answer.interval.hi;
  explain->interval_width = answer.interval.Width();
  explain->boundary_edges = answer.edges_accessed;
  explain->boundary_sensors = answer.nodes_accessed;
  explain->dead_boundary_edges = answer.dead_boundary_edges;
  explain->rerouted_faces = answer.rerouted_faces;
}

QueryAnswer SampledQueryProcessor::Answer(const RangeQuery& query,
                                          CountKind kind, BoundMode bound,
                                          obs::QueryTrace* trace,
                                          obs::ExplainRecord* explain) const {
  util::Timer timer;
  QueryAnswer answer;
  ProcessorQueries().Increment();

  SampledGraph::RegionBoundary boundary;
  {
    obs::Span span(trace, "boundary_resolution");
    std::vector<uint32_t> faces =
        bound == BoundMode::kLower
            ? sampled_->LowerBoundFaces(query.junctions)
            : sampled_->UpperBoundFaces(query.junctions);
    if (explain != nullptr) {
      FillExplainResolution(*sampled_, query, kind, bound, faces, *store_,
                            explain);
    }
    if (faces.empty()) {
      answer.missed = true;
      answer.exec_micros = timer.ElapsedMicros();
      ProcessorMissed().Increment();
      if (trace != nullptr) trace->Annotate("missed", 1.0);
      if (explain != nullptr) FillExplainAnswer(answer, explain);
      return answer;
    }
    boundary = sampled_->BoundaryOfFaces(faces);
  }

  {
    obs::Span span(trace, "form_integration");
    answer.estimate =
        kind == CountKind::kStatic
            ? forms::EvaluateStaticCount(*store_, boundary.edges, query.t2)
            : forms::EvaluateTransientCount(*store_, boundary.edges,
                                            query.t1, query.t2);
  }
  answer.interval = forms::CountInterval::Point(answer.estimate);
  answer.nodes_accessed = boundary.sensors.size();
  answer.edges_accessed = boundary.edges.size();
  answer.exec_micros = timer.ElapsedMicros();
  if (trace != nullptr) trace->Annotate("estimate", answer.estimate);
  if (explain != nullptr) FillExplainAnswer(answer, explain);
  return answer;
}

QueryAnswer SampledQueryProcessor::AnswerDegraded(
    const RangeQuery& query, CountKind kind, BoundMode bound,
    const SensorHealthView& health, const DegradedOptions& options,
    obs::QueryTrace* trace, obs::ExplainRecord* explain) const {
  util::Timer timer;
  ProcessorQueries().Increment();
  DegradedBoundary resolved;
  {
    obs::Span span(trace, "degraded_reroute");
    std::vector<uint32_t> faces =
        bound == BoundMode::kLower
            ? sampled_->LowerBoundFaces(query.junctions)
            : sampled_->UpperBoundFaces(query.junctions);
    if (explain != nullptr) {
      FillExplainResolution(*sampled_, query, kind, bound, faces, *store_,
                            explain);
    }
    resolved = ResolveDegradedBoundary(*sampled_, faces, health, options);
  }
  QueryAnswer answer;
  {
    obs::Span span(trace, "degraded_answer");
    answer =
        AnswerFromDegradedBoundary(*store_, resolved, query, kind, options);
  }
  if (answer.missed) ProcessorMissed().Increment();
  if (answer.degraded) ProcessorDegraded().Increment();
  answer.exec_micros = timer.ElapsedMicros();
  if (explain != nullptr) {
    FillExplainAnswer(answer, explain);
    if (answer.degraded) explain->path = "degraded";
  }
  return answer;
}

std::vector<double> SampledQueryProcessor::AnswerSeries(
    const RangeQuery& query, BoundMode bound, size_t steps) const {
  INNET_CHECK(query.t2 >= query.t1);
  if (steps == 0) return {};
  std::vector<uint32_t> faces = bound == BoundMode::kLower
                                    ? sampled_->LowerBoundFaces(query.junctions)
                                    : sampled_->UpperBoundFaces(query.junctions);
  if (faces.empty()) return {};
  SampledGraph::RegionBoundary boundary = sampled_->BoundaryOfFaces(faces);
  std::vector<double> series;
  series.reserve(steps);
  if (steps == 1) {
    // A single instant degenerates to the interval start.
    series.push_back(forms::EvaluateStaticCount(*store_, boundary.edges,
                                                query.t1));
    return series;
  }
  double span = query.t2 - query.t1;
  for (size_t i = 0; i < steps; ++i) {
    double t = query.t1 +
               span * static_cast<double>(i) / static_cast<double>(steps - 1);
    series.push_back(
        forms::EvaluateStaticCount(*store_, boundary.edges, t));
  }
  return series;
}

QueryAnswer UnsampledQueryProcessor::Answer(const RangeQuery& query,
                                            CountKind kind,
                                            obs::ExplainRecord* explain) const {
  util::Timer timer;
  QueryAnswer answer;
  UnsampledQueries().Increment();
  const graph::PlanarGraph& mobility = network_->mobility();

  // Region-local boundary extraction: walk the in-region junctions'
  // adjacency only (the work an in-network dispatch actually performs).
  // Every boundary edge is found exactly once, from its inside endpoint.
  std::vector<bool> mask = network_->JunctionMask(query.junctions);
  std::vector<forms::BoundaryEdge> boundary;
  for (graph::NodeId u : query.junctions) {
    for (const graph::Neighbor& nb : mobility.NeighborsOf(u)) {
      if (mask[nb.node]) continue;
      boundary.push_back(
          {nb.edge, /*inward_is_forward=*/mobility.Edge(nb.edge).v == u});
    }
    if (network_->gateway_mask()[u]) {
      boundary.push_back(
          {network_->VirtualEdgeOf(u), /*inward_is_forward=*/true});
    }
  }
  answer.estimate =
      kind == CountKind::kStatic
          ? forms::EvaluateStaticCount(network_->reference_store(), boundary,
                                       query.t2)
          : forms::EvaluateTransientCount(network_->reference_store(),
                                          boundary, query.t1, query.t2);
  answer.interval = forms::CountInterval::Point(answer.estimate);
  answer.edges_accessed = boundary.size();

  // Flooding cost: every sensor whose face touches a junction of the region
  // participates in the in-network aggregation.
  std::vector<bool> sensor_seen(network_->sensing().NumNodes(), false);
  size_t sensors = 0;
  for (graph::NodeId n : query.junctions) {
    for (graph::FaceId f : mobility.FacesAroundNode(n)) {
      if (!sensor_seen[f]) {
        sensor_seen[f] = true;
        ++sensors;
      }
    }
  }
  answer.nodes_accessed = sensors;
  answer.exec_micros = timer.ElapsedMicros();
  if (explain != nullptr) {
    explain->kind = CountKindName(kind);
    explain->bound = "exact";
    explain->path = "unsampled";
    explain->region_cells = query.junctions.size();
    explain->resolved_cells = query.junctions.size();
    explain->deadspace_fraction = 0.0;
    forms::StoreProvenance provenance =
        network_->reference_store().Provenance();
    explain->store = provenance.kind;
    explain->store_modeled_events = provenance.modeled_events;
    explain->store_raw_events = provenance.raw_events;
    FillExplainAnswer(answer, explain);
  }
  return answer;
}

}  // namespace innet::core
