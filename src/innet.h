// Umbrella header: the full public API of the innet library.
//
// Typical use:
//   #include "innet.h"
//   innet::core::Framework framework(options);
//   auto deployment = framework.DeployWithSampler(...);
//   auto answer = deployment.processor().Answer(query, ...);
//
// Individual headers remain includable on their own; this header is a
// convenience for applications.
#ifndef INNET_INNET_H_
#define INNET_INNET_H_

// Utilities.
#include "util/flags.h"       // IWYU pragma: export
#include "util/logging.h"     // IWYU pragma: export
#include "util/rng.h"         // IWYU pragma: export
#include "util/simd.h"        // IWYU pragma: export
#include "util/stats.h"       // IWYU pragma: export
#include "util/status.h"      // IWYU pragma: export
#include "util/table.h"       // IWYU pragma: export
#include "util/thread_pool.h" // IWYU pragma: export
#include "util/timer.h"       // IWYU pragma: export

// Geometry and spatial indexes.
#include "geometry/convex_hull.h"  // IWYU pragma: export
#include "geometry/delaunay.h"     // IWYU pragma: export
#include "geometry/point.h"        // IWYU pragma: export
#include "geometry/polygon.h"      // IWYU pragma: export
#include "geometry/predicates.h"   // IWYU pragma: export
#include "geometry/rect.h"         // IWYU pragma: export
#include "geometry/segment.h"      // IWYU pragma: export
#include "spatial/grid.h"          // IWYU pragma: export
#include "spatial/kdtree.h"        // IWYU pragma: export
#include "spatial/quadtree.h"      // IWYU pragma: export
#include "spatial/rtree.h"         // IWYU pragma: export

// Graphs.
#include "graph/connectivity.h"       // IWYU pragma: export
#include "graph/dual_graph.h"         // IWYU pragma: export
#include "graph/planar_graph.h"       // IWYU pragma: export
#include "graph/planarize.h"          // IWYU pragma: export
#include "graph/shortest_path.h"      // IWYU pragma: export
#include "graph/weighted_adjacency.h" // IWYU pragma: export

// Mobility domain.
#include "mobility/map_matching.h"         // IWYU pragma: export
#include "mobility/perturbation.h"         // IWYU pragma: export
#include "mobility/road_network.h"         // IWYU pragma: export
#include "mobility/trajectory.h"           // IWYU pragma: export
#include "mobility/trajectory_generator.h" // IWYU pragma: export

// Differential forms and stores.
#include "forms/differential_form.h"    // IWYU pragma: export
#include "forms/edge_count_store.h"     // IWYU pragma: export
#include "forms/region_count.h"         // IWYU pragma: export
#include "forms/tracking_form.h"        // IWYU pragma: export
#include "learned/buffered_edge_store.h" // IWYU pragma: export
#include "learned/count_model.h"         // IWYU pragma: export
#include "learned/rolling_store.h"       // IWYU pragma: export
#include "privacy/private_store.h"       // IWYU pragma: export

// Observability: metrics, tracing, exporters, accuracy, provenance, and
// the live telemetry plane (HTTP endpoint, rolling windows, SLOs, crash
// black box).
#include "obs/accuracy.h"         // IWYU pragma: export
#include "obs/build_info.h"       // IWYU pragma: export
#include "obs/explain.h"          // IWYU pragma: export
#include "obs/export.h"           // IWYU pragma: export
#include "obs/flight_recorder.h"  // IWYU pragma: export
#include "obs/metrics.h"          // IWYU pragma: export
#include "obs/query_cost.h"       // IWYU pragma: export
#include "obs/query_digest.h"     // IWYU pragma: export
#include "obs/slo.h"              // IWYU pragma: export
#include "obs/slowlog.h"          // IWYU pragma: export
#include "obs/telemetry_server.h" // IWYU pragma: export
#include "obs/timeseries.h"       // IWYU pragma: export
#include "obs/trace.h"            // IWYU pragma: export

// Sensor selection.
#include "placement/query_adaptive.h" // IWYU pragma: export
#include "placement/submodular.h"     // IWYU pragma: export
#include "sampling/samplers.h"        // IWYU pragma: export

// Core framework.
#include "core/adaptive_weights.h" // IWYU pragma: export
#include "core/budget_planner.h"   // IWYU pragma: export
#include "core/cost_model.h"       // IWYU pragma: export
#include "core/dead_space.h"       // IWYU pragma: export
#include "core/degraded.h"         // IWYU pragma: export
#include "core/dispatch.h"         // IWYU pragma: export
#include "core/event_buffer.h"     // IWYU pragma: export
#include "core/framework.h"        // IWYU pragma: export
#include "core/health.h"           // IWYU pragma: export
#include "core/live_monitor.h"     // IWYU pragma: export
#include "core/query.h"            // IWYU pragma: export
#include "core/query_processor.h"  // IWYU pragma: export
#include "core/sampled_graph.h"    // IWYU pragma: export
#include "core/sensor_network.h"   // IWYU pragma: export
#include "core/workload.h"         // IWYU pragma: export

// Fault injection and health tracking.
#include "faults/crash_points.h"   // IWYU pragma: export
#include "faults/fault_model.h"    // IWYU pragma: export
#include "faults/health_monitor.h" // IWYU pragma: export

// Serving runtime.
#include "runtime/batch_query_engine.h" // IWYU pragma: export
#include "runtime/boundary_cache.h"     // IWYU pragma: export
#include "runtime/ingest_pipeline.h"    // IWYU pragma: export
#include "runtime/recovery.h"           // IWYU pragma: export

// Baselines, persistence, rendering.
#include "baseline/euler_histogram.h" // IWYU pragma: export
#include "baseline/face_sampling.h"   // IWYU pragma: export
#include "io/event_log.h"             // IWYU pragma: export
#include "io/serialize.h"             // IWYU pragma: export
#include "viz/network_render.h"       // IWYU pragma: export
#include "viz/svg.h"                  // IWYU pragma: export

#endif  // INNET_INNET_H_
