#include "baseline/face_sampling.h"

#include <algorithm>

#include "util/logging.h"
#include "util/timer.h"

namespace innet::baseline {

FaceSamplingBaseline::FaceSamplingBaseline(
    const core::SensorNetwork& network,
    const std::vector<mobility::Trajectory>& trajectories,
    size_t num_sampled_faces, util::Rng& rng, bool horvitz_thompson)
    : network_(&network),
      occupancy_(network.mobility(), trajectories, &network.gateway_mask()),
      sampled_(network.mobility().NumNodes(), false),
      horvitz_thompson_(horvitz_thompson) {
  size_t n = network.mobility().NumNodes();
  sampled_count_ = std::min(num_sampled_faces, n);
  for (size_t idx : rng.SampleWithoutReplacement(n, sampled_count_)) {
    sampled_[idx] = true;
  }
}

core::QueryAnswer FaceSamplingBaseline::Answer(const core::RangeQuery& query,
                                               core::CountKind kind) const {
  util::Timer timer;
  core::QueryAnswer answer;
  size_t responding = 0;
  double raw = 0.0;
  for (graph::NodeId n : query.junctions) {
    if (!sampled_[n]) continue;
    ++responding;
    if (kind == core::CountKind::kStatic) {
      raw += static_cast<double>(occupancy_.OccupancyAt(n, query.t2));
    } else {
      raw += static_cast<double>(occupancy_.OccupancyAt(n, query.t2) -
                                 occupancy_.OccupancyAt(n, query.t1));
    }
  }
  if (responding == 0) {
    answer.missed = true;
    answer.exec_micros = timer.ElapsedMicros();
    return answer;
  }
  // Optional Horvitz-Thompson scaling by the inverse sampled coverage of
  // the region; the paper's baseline reports the raw partial sum.
  double scale = horvitz_thompson_
                     ? static_cast<double>(query.junctions.size()) /
                           static_cast<double>(responding)
                     : 1.0;
  answer.estimate = raw * scale;
  answer.nodes_accessed = responding;
  answer.edges_accessed = 0;
  answer.exec_micros = timer.ElapsedMicros();
  return answer;
}

size_t FaceSamplingBaseline::StorageBytes() const {
  size_t total = 0;
  for (graph::NodeId n = 0; n < sampled_.size(); ++n) {
    if (sampled_[n]) total += occupancy_.EventsForCell(n) * sizeof(double);
  }
  return total;
}

}  // namespace innet::baseline
