// Per-face occupancy index: for every junction cell (face of the sensing
// graph) the sorted arrival and departure times of visible objects. This is
// the aggregated state the Euler-histogram baseline keeps per face.
#ifndef INNET_BASELINE_FACE_OCCUPANCY_H_
#define INNET_BASELINE_FACE_OCCUPANCY_H_

#include <vector>

#include "graph/planar_graph.h"
#include "mobility/trajectory.h"

namespace innet::baseline {

/// Arrival/departure aggregates per junction cell, under the same
/// visibility convention as the tracking forms (objects appear with their
/// first crossing, the final cell is never departed).
class FaceOccupancyIndex {
 public:
  /// `visible_from_start` marks gateway junctions (⋆v_ext entries): see
  /// mobility::OccupancyOracle for the convention.
  FaceOccupancyIndex(const graph::PlanarGraph& graph,
                     const std::vector<mobility::Trajectory>& trajectories,
                     const std::vector<bool>* visible_from_start = nullptr);

  size_t num_cells() const { return arrivals_.size(); }

  /// Objects present in cell `junction` at time t:
  /// arrivals(<= t) - departures(<= t).
  int64_t OccupancyAt(graph::NodeId junction, double t) const;

  /// Visits of cell `junction` overlapping the closed interval [t0, t1]:
  /// arrivals(<= t1) - departures(< t0).
  int64_t VisitsOverlapping(graph::NodeId junction, double t0,
                            double t1) const;

  /// Total stored timestamps (storage accounting).
  size_t TotalEvents() const;

  /// Stored timestamps for one cell.
  size_t EventsForCell(graph::NodeId junction) const {
    return arrivals_[junction].size() + departures_[junction].size();
  }

 private:
  std::vector<std::vector<double>> arrivals_;    // Sorted per junction.
  std::vector<std::vector<double>> departures_;  // Sorted per junction.
};

}  // namespace innet::baseline

#endif  // INNET_BASELINE_FACE_OCCUPANCY_H_
