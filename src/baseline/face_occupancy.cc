#include "baseline/face_occupancy.h"

#include <algorithm>

#include "util/logging.h"

namespace innet::baseline {

FaceOccupancyIndex::FaceOccupancyIndex(
    const graph::PlanarGraph& graph,
    const std::vector<mobility::Trajectory>& trajectories,
    const std::vector<bool>* visible_from_start)
    : arrivals_(graph.NumNodes()), departures_(graph.NumNodes()) {
  for (const mobility::Trajectory& trajectory : trajectories) {
    if (trajectory.nodes.empty()) continue;
    bool gateway_start = visible_from_start != nullptr &&
                         (*visible_from_start)[trajectory.nodes.front()];
    size_t first = gateway_start ? 0 : 1;
    if (trajectory.nodes.size() <= first) continue;  // Never visible.
    // Visible cells: nodes[i] occupied during [times[i], times[i+1]); the
    // final cell is never departed.
    for (size_t i = first; i < trajectory.nodes.size(); ++i) {
      arrivals_[trajectory.nodes[i]].push_back(trajectory.times[i]);
      if (i + 1 < trajectory.nodes.size()) {
        departures_[trajectory.nodes[i]].push_back(trajectory.times[i + 1]);
      }
    }
  }
  for (auto& seq : arrivals_) std::sort(seq.begin(), seq.end());
  for (auto& seq : departures_) std::sort(seq.begin(), seq.end());
}

int64_t FaceOccupancyIndex::OccupancyAt(graph::NodeId junction,
                                        double t) const {
  const std::vector<double>& arr = arrivals_[junction];
  const std::vector<double>& dep = departures_[junction];
  int64_t arrived = std::upper_bound(arr.begin(), arr.end(), t) - arr.begin();
  int64_t departed = std::upper_bound(dep.begin(), dep.end(), t) - dep.begin();
  return arrived - departed;
}

int64_t FaceOccupancyIndex::VisitsOverlapping(graph::NodeId junction,
                                              double t0, double t1) const {
  const std::vector<double>& arr = arrivals_[junction];
  const std::vector<double>& dep = departures_[junction];
  int64_t arrived =
      std::upper_bound(arr.begin(), arr.end(), t1) - arr.begin();
  // Visits already over before t0: departure strictly earlier than t0.
  int64_t gone = std::lower_bound(dep.begin(), dep.end(), t0) - dep.begin();
  return arrived - gone;
}

size_t FaceOccupancyIndex::TotalEvents() const {
  size_t total = 0;
  for (const auto& seq : arrivals_) total += seq.size();
  for (const auto& seq : departures_) total += seq.size();
  return total;
}

}  // namespace innet::baseline
