#include "baseline/euler_histogram.h"

#include <algorithm>

#include "util/logging.h"

namespace innet::baseline {

EulerHistogram::EulerHistogram(
    const graph::PlanarGraph& graph,
    const std::vector<mobility::Trajectory>& trajectories,
    const std::vector<bool>* visible_from_start)
    : graph_(&graph),
      faces_(graph, trajectories, visible_from_start),
      edges_(graph.NumEdges()) {
  for (const mobility::CrossingEvent& event :
       mobility::ExtractAllCrossingEvents(graph, trajectories)) {
    edges_.RecordTraversal(event.edge, event.forward, event.time);
  }
}

int64_t EulerHistogram::CrossingsWithin(graph::EdgeId e, double t0,
                                        double t1) const {
  int64_t total = 0;
  for (bool forward : {true, false}) {
    const std::vector<double>& seq = edges_.Sequence(e, forward);
    auto lo = std::lower_bound(seq.begin(), seq.end(), t0);
    auto hi = std::upper_bound(seq.begin(), seq.end(), t1);
    total += hi - lo;
  }
  return total;
}

int64_t EulerHistogram::ConnectedVisits(const std::vector<bool>& in_region,
                                        double t0, double t1) const {
  INNET_CHECK(in_region.size() == graph_->NumNodes());
  int64_t visits = 0;
  for (graph::NodeId n = 0; n < graph_->NumNodes(); ++n) {
    if (in_region[n]) visits += faces_.VisitsOverlapping(n, t0, t1);
  }
  int64_t interior_crossings = 0;
  for (graph::EdgeId e = 0; e < graph_->NumEdges(); ++e) {
    const graph::EdgeRecord& rec = graph_->Edge(e);
    if (in_region[rec.u] && in_region[rec.v]) {
      interior_crossings += CrossingsWithin(e, t0, t1);
    }
  }
  return visits - interior_crossings;
}

int64_t EulerHistogram::OccupancyAt(const std::vector<bool>& in_region,
                                    double t) const {
  int64_t total = 0;
  for (graph::NodeId n = 0; n < graph_->NumNodes(); ++n) {
    if (in_region[n]) total += faces_.OccupancyAt(n, t);
  }
  return total;
}

}  // namespace innet::baseline
