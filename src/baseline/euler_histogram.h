// Euler histogram over the sensing graph's faces ([15, 19], §5.1.2).
//
// The classic trajectory Euler identity: for a region R (a union of junction
// cells) and interval [t0, t1],
//   connected visits = Σ_{cell in R} visits(cell) - Σ_{edge interior to R}
//                      crossings(edge)
// Each maximal in-region stretch of a trajectory contributes exactly one:
// its cell visits form a path whose interior crossings cancel all but one
// term. An object that leaves R and re-enters counts once per stretch (the
// well-known Euler-histogram overcount for distinct objects).
#ifndef INNET_BASELINE_EULER_HISTOGRAM_H_
#define INNET_BASELINE_EULER_HISTOGRAM_H_

#include <vector>

#include "baseline/face_occupancy.h"
#include "forms/tracking_form.h"
#include "graph/planar_graph.h"
#include "mobility/trajectory.h"

namespace innet::baseline {

/// Aggregated Euler histogram: per-face visit aggregates plus per-edge
/// crossing sequences.
class EulerHistogram {
 public:
  /// `visible_from_start` marks gateway junctions; see FaceOccupancyIndex.
  EulerHistogram(const graph::PlanarGraph& graph,
                 const std::vector<mobility::Trajectory>& trajectories,
                 const std::vector<bool>* visible_from_start = nullptr);

  /// Number of connected in-region visits during the closed interval
  /// [t0, t1] for the junction-cell union flagged by `in_region`.
  int64_t ConnectedVisits(const std::vector<bool>& in_region, double t0,
                          double t1) const;

  /// Objects present in the region at time t (sum of face occupancies).
  int64_t OccupancyAt(const std::vector<bool>& in_region, double t) const;

 private:
  /// Crossings of edge e (both directions) within closed [t0, t1].
  int64_t CrossingsWithin(graph::EdgeId e, double t0, double t1) const;

  const graph::PlanarGraph* graph_;
  FaceOccupancyIndex faces_;
  forms::TrackingForm edges_;
};

}  // namespace innet::baseline

#endif  // INNET_BASELINE_EULER_HISTOGRAM_H_
