// The paper's baseline (§5.1.2): Euler-histogram face counts on the
// unsampled sensing graph G combined with uniform random face sampling
// ([14, 29]). Sampled faces store their occupancy aggregates; a query sums
// the responding sampled faces inside Q_R and scales by the inverse sampled
// coverage (Horvitz-Thompson).
#ifndef INNET_BASELINE_FACE_SAMPLING_H_
#define INNET_BASELINE_FACE_SAMPLING_H_

#include <vector>

#include "baseline/face_occupancy.h"
#include "core/query.h"
#include "core/sensor_network.h"
#include "mobility/trajectory.h"
#include "util/rng.h"

namespace innet::baseline {

/// Face-sampling aggregate baseline.
class FaceSamplingBaseline {
 public:
  /// Samples `num_sampled_faces` junction cells uniformly without
  /// replacement and aggregates their occupancy events.
  ///
  /// With `horvitz_thompson` false (the paper's baseline), a query sums the
  /// sampled faces inside Q_R only — "the area of the sampled faces
  /// predetermines the maximum coverage" (§5.3). With true, the sum is
  /// scaled by the inverse sampled coverage, giving an unbiased but noisier
  /// estimator.
  FaceSamplingBaseline(const core::SensorNetwork& network,
                       const std::vector<mobility::Trajectory>& trajectories,
                       size_t num_sampled_faces, util::Rng& rng,
                       bool horvitz_thompson = false);

  /// Answers a query by flooding the sampled faces inside the region.
  core::QueryAnswer Answer(const core::RangeQuery& query,
                           core::CountKind kind) const;

  size_t NumSampledFaces() const { return sampled_count_; }

  /// Bytes stored across the sampled faces.
  size_t StorageBytes() const;

 private:
  const core::SensorNetwork* network_;
  FaceOccupancyIndex occupancy_;
  std::vector<bool> sampled_;
  size_t sampled_count_ = 0;
  bool horvitz_thompson_ = false;
};

}  // namespace innet::baseline

#endif  // INNET_BASELINE_FACE_SAMPLING_H_
