#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace innet::spatial {

namespace {

geometry::Point Center(const geometry::Rect& r) { return r.Center(); }

}  // namespace

RTree::RTree(std::vector<geometry::Rect> boxes, size_t node_capacity)
    : boxes_(std::move(boxes)) {
  INNET_CHECK(node_capacity >= 2);
  if (boxes_.empty()) return;

  // STR leaf packing: sort by center x, cut into vertical slices of
  // ~sqrt(n/capacity) leaves each, sort each slice by center y, pack runs of
  // `node_capacity` into leaves.
  size_t n = boxes_.size();
  slots_.resize(n);
  std::iota(slots_.begin(), slots_.end(), 0u);
  std::sort(slots_.begin(), slots_.end(), [this](uint32_t a, uint32_t b) {
    return Center(boxes_[a]).x < Center(boxes_[b]).x;
  });
  size_t leaves = (n + node_capacity - 1) / node_capacity;
  size_t slices = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaves))));
  size_t slice_size =
      ((leaves + slices - 1) / slices) * node_capacity;  // Boxes per slice.
  for (size_t begin = 0; begin < n; begin += slice_size) {
    size_t end = std::min(begin + slice_size, n);
    std::sort(slots_.begin() + begin, slots_.begin() + end,
              [this](uint32_t a, uint32_t b) {
                return Center(boxes_[a]).y < Center(boxes_[b]).y;
              });
  }

  // Build the leaf level.
  std::vector<uint32_t> level;
  for (size_t begin = 0; begin < n; begin += node_capacity) {
    size_t end = std::min(begin + node_capacity, n);
    Node node;
    node.leaf = true;
    node.first = static_cast<uint32_t>(begin);
    node.count = static_cast<uint32_t>(end - begin);
    node.bounds = boxes_[slots_[begin]];
    for (size_t i = begin + 1; i < end; ++i) {
      node.bounds.ExpandToInclude(
          {boxes_[slots_[i]].min_x, boxes_[slots_[i]].min_y});
      node.bounds.ExpandToInclude(
          {boxes_[slots_[i]].max_x, boxes_[slots_[i]].max_y});
    }
    level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(node);
  }
  height_ = 1;

  // Build internal levels until one root remains. Children of one internal
  // node must be contiguous; each level is appended in order, so group runs
  // directly.
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t begin = 0; begin < level.size(); begin += node_capacity) {
      size_t end = std::min(begin + node_capacity, level.size());
      Node node;
      node.leaf = false;
      node.first = level[begin];
      node.count = static_cast<uint32_t>(end - begin);
      node.bounds = nodes_[level[begin]].bounds;
      for (size_t i = begin + 1; i < end; ++i) {
        const geometry::Rect& b = nodes_[level[i]].bounds;
        node.bounds.ExpandToInclude({b.min_x, b.min_y});
        node.bounds.ExpandToInclude({b.max_x, b.max_y});
      }
      next.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(node);
    }
    level = std::move(next);
    ++height_;
  }
  root_ = level[0];
}

template <bool kContained>
void RTree::Collect(uint32_t node_id, const geometry::Rect& range,
                    std::vector<size_t>* out) const {
  const Node& node = nodes_[node_id];
  if (!range.Intersects(node.bounds)) return;
  bool subtree_inside = range.Contains(node.bounds);
  if (node.leaf) {
    for (uint32_t i = node.first; i < node.first + node.count; ++i) {
      uint32_t box = slots_[i];
      if (subtree_inside) {
        out->push_back(box);
      } else if constexpr (kContained) {
        if (range.Contains(boxes_[box])) out->push_back(box);
      } else {
        if (range.Intersects(boxes_[box])) out->push_back(box);
      }
    }
    return;
  }
  for (uint32_t c = node.first; c < node.first + node.count; ++c) {
    Collect<kContained>(c, range, out);
  }
}

std::vector<size_t> RTree::Intersecting(const geometry::Rect& range) const {
  std::vector<size_t> out;
  if (!boxes_.empty()) Collect<false>(root_, range, &out);
  return out;
}

std::vector<size_t> RTree::ContainedIn(const geometry::Rect& range) const {
  std::vector<size_t> out;
  if (!boxes_.empty()) Collect<true>(root_, range, &out);
  return out;
}

}  // namespace innet::spatial
