// kd-tree over 2-D points: range and k-nearest queries, plus leaf
// partitioning for hierarchical space-partition sampling (§4.3).
#ifndef INNET_SPATIAL_KDTREE_H_
#define INNET_SPATIAL_KDTREE_H_

#include <cstdint>
#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace innet::spatial {

/// Static balanced kd-tree built by median splits.
class KdTree {
 public:
  /// Builds over `points`; leaves hold at most `leaf_capacity` points
  /// (>= 1). Indices returned by queries refer to the input vector.
  explicit KdTree(std::vector<geometry::Point> points,
                  size_t leaf_capacity = 8);

  size_t size() const { return points_.size(); }

  /// Indices of all points inside `range` (inclusive bounds).
  std::vector<size_t> RangeQuery(const geometry::Rect& range) const;

  /// Index of the point closest to `query`. Requires a non-empty tree.
  size_t NearestNeighbor(const geometry::Point& query) const;

  /// Indices of the k points closest to `query`, nearest first (fewer when
  /// the tree holds fewer than k points).
  std::vector<size_t> KNearest(const geometry::Point& query, size_t k) const;

  /// The tree's leaf cells as groups of point indices, in left-to-right
  /// order.
  std::vector<std::vector<size_t>> LeafPartitions() const;

  /// Partitions `points` into at least `num_leaves` kd cells (splitting the
  /// largest cell first), used by the kd-tree sampler: one sensor is then
  /// drawn per cell. Returns fewer cells only when there are fewer points.
  static std::vector<std::vector<size_t>> PartitionIntoCells(
      const std::vector<geometry::Point>& points, size_t num_leaves);

 private:
  struct Node {
    geometry::Rect bounds;
    // Interior: split axis/value and children. Leaf: children == -1.
    int axis = -1;  // 0 = x, 1 = y, -1 = leaf
    double split = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    uint32_t begin = 0;  // Range into order_ for leaves.
    uint32_t end = 0;
  };

  int32_t Build(uint32_t begin, uint32_t end);
  void CollectRange(int32_t node, const geometry::Rect& range,
                    std::vector<size_t>* out) const;
  void SearchKnn(int32_t node, const geometry::Point& query, size_t k,
                 std::vector<std::pair<double, size_t>>* heap) const;

  std::vector<geometry::Point> points_;
  std::vector<uint32_t> order_;  // Permutation of point indices.
  std::vector<Node> nodes_;
  size_t leaf_capacity_;
  int32_t root_ = -1;
};

}  // namespace innet::spatial

#endif  // INNET_SPATIAL_KDTREE_H_
