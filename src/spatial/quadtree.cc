#include "spatial/quadtree.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/logging.h"

namespace innet::spatial {

QuadTree::QuadTree(std::vector<geometry::Point> points, size_t leaf_capacity,
                   int max_depth)
    : points_(std::move(points)),
      leaf_capacity_(std::max<size_t>(1, leaf_capacity)),
      max_depth_(max_depth) {
  if (points_.empty()) return;
  geometry::Rect bounds =
      geometry::BoundingBox(points_.begin(), points_.end()).Inflated(1e-9);
  Node root;
  root.bounds = bounds;
  nodes_.push_back(root);
  root_ = 0;
  for (uint32_t i = 0; i < points_.size(); ++i) {
    Insert(root_, i, 0);
  }
}

int QuadTree::QuadrantOf(const Node& node, const geometry::Point& p) const {
  geometry::Point c = node.bounds.Center();
  int qx = p.x >= c.x ? 1 : 0;
  int qy = p.y >= c.y ? 1 : 0;
  return qy * 2 + qx;
}

void QuadTree::Split(int32_t node_id, int depth) {
  geometry::Rect b = nodes_[node_id].bounds;
  geometry::Point c = b.Center();
  geometry::Rect quads[4] = {
      geometry::Rect(b.min_x, b.min_y, c.x, c.y),
      geometry::Rect(c.x, b.min_y, b.max_x, c.y),
      geometry::Rect(b.min_x, c.y, c.x, b.max_y),
      geometry::Rect(c.x, c.y, b.max_x, b.max_y),
  };
  for (int q = 0; q < 4; ++q) {
    Node child;
    child.bounds = quads[q];
    nodes_.push_back(child);
    nodes_[node_id].children[q] = static_cast<int32_t>(nodes_.size() - 1);
  }
  nodes_[node_id].is_leaf = false;
  std::vector<uint32_t> payload = std::move(nodes_[node_id].indices);
  nodes_[node_id].indices.clear();
  for (uint32_t idx : payload) {
    int q = QuadrantOf(nodes_[node_id], points_[idx]);
    Insert(nodes_[node_id].children[q], idx, depth + 1);
  }
}

void QuadTree::Insert(int32_t node_id, uint32_t index, int depth) {
  if (!nodes_[node_id].is_leaf) {
    int q = QuadrantOf(nodes_[node_id], points_[index]);
    Insert(nodes_[node_id].children[q], index, depth + 1);
    return;
  }
  nodes_[node_id].indices.push_back(index);
  if (nodes_[node_id].indices.size() > leaf_capacity_ && depth < max_depth_) {
    Split(node_id, depth);
  }
}

std::vector<size_t> QuadTree::RangeQuery(const geometry::Rect& range) const {
  std::vector<size_t> out;
  if (root_ >= 0) CollectRange(root_, range, &out);
  return out;
}

void QuadTree::CollectRange(int32_t node_id, const geometry::Rect& range,
                            std::vector<size_t>* out) const {
  const Node& node = nodes_[node_id];
  if (!range.Intersects(node.bounds)) return;
  if (node.is_leaf) {
    for (uint32_t idx : node.indices) {
      if (range.Contains(points_[idx])) out->push_back(idx);
    }
    return;
  }
  for (int q = 0; q < 4; ++q) CollectRange(node.children[q], range, out);
}

std::vector<QuadTree::LeafCell> QuadTree::LeafPartitions() const {
  std::vector<LeafCell> cells;
  for (const Node& node : nodes_) {
    if (!node.is_leaf) continue;
    LeafCell cell;
    cell.bounds = node.bounds;
    cell.indices.assign(node.indices.begin(), node.indices.end());
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::vector<std::vector<size_t>> QuadTree::PartitionIntoCells(
    const std::vector<geometry::Point>& points, size_t num_leaves) {
  INNET_CHECK(num_leaves > 0);
  if (points.empty()) return {};
  struct Cell {
    geometry::Rect bounds;
    std::vector<size_t> indices;
  };
  auto population_less = [](const Cell& a, const Cell& b) {
    return a.indices.size() < b.indices.size();
  };
  std::priority_queue<Cell, std::vector<Cell>, decltype(population_less)>
      queue(population_less);
  Cell all;
  all.bounds =
      geometry::BoundingBox(points.begin(), points.end()).Inflated(1e-9);
  all.indices.resize(points.size());
  std::iota(all.indices.begin(), all.indices.end(), size_t{0});
  queue.push(std::move(all));

  std::vector<Cell> done;
  // Splitting a cell yields up to 4 non-empty children, so count non-empty
  // cells only.
  auto nonempty_count = [&]() {
    return queue.size() + done.size();
  };
  while (!queue.empty() && nonempty_count() < num_leaves) {
    Cell cell = queue.top();
    queue.pop();
    if (cell.indices.size() <= 1 ||
        std::max(cell.bounds.Width(), cell.bounds.Height()) < 1e-9) {
      done.push_back(std::move(cell));
      continue;
    }
    geometry::Point c = cell.bounds.Center();
    geometry::Rect quads[4] = {
        geometry::Rect(cell.bounds.min_x, cell.bounds.min_y, c.x, c.y),
        geometry::Rect(c.x, cell.bounds.min_y, cell.bounds.max_x, c.y),
        geometry::Rect(cell.bounds.min_x, c.y, c.x, cell.bounds.max_y),
        geometry::Rect(c.x, c.y, cell.bounds.max_x, cell.bounds.max_y),
    };
    Cell children[4];
    for (int q = 0; q < 4; ++q) children[q].bounds = quads[q];
    for (size_t idx : cell.indices) {
      const geometry::Point& p = points[idx];
      int qx = p.x >= c.x ? 1 : 0;
      int qy = p.y >= c.y ? 1 : 0;
      children[qy * 2 + qx].indices.push_back(idx);
    }
    for (int q = 0; q < 4; ++q) {
      if (!children[q].indices.empty()) queue.push(std::move(children[q]));
    }
  }

  std::vector<std::vector<size_t>> cells;
  for (Cell& cell : done) {
    if (!cell.indices.empty()) cells.push_back(std::move(cell.indices));
  }
  while (!queue.empty()) {
    if (!queue.top().indices.empty()) cells.push_back(queue.top().indices);
    queue.pop();
  }
  return cells;
}

}  // namespace innet::spatial
