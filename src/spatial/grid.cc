#include "spatial/grid.h"

#include <algorithm>

#include "util/logging.h"

namespace innet::spatial {

UniformGrid::UniformGrid(const geometry::Rect& bounds, size_t nx, size_t ny,
                         const std::vector<geometry::Point>& points)
    : bounds_(bounds), nx_(nx), ny_(ny) {
  INNET_CHECK(nx_ >= 1 && ny_ >= 1);
  INNET_CHECK(bounds_.Width() > 0.0 && bounds_.Height() > 0.0);
  buckets_.assign(nx_ * ny_, {});
  for (size_t i = 0; i < points.size(); ++i) {
    buckets_[CellOf(points[i])].push_back(i);
  }
}

size_t UniformGrid::CellOf(const geometry::Point& p) const {
  double fx = (p.x - bounds_.min_x) / bounds_.Width();
  double fy = (p.y - bounds_.min_y) / bounds_.Height();
  auto clamp_index = [](double f, size_t n) {
    long idx = static_cast<long>(f * static_cast<double>(n));
    idx = std::clamp<long>(idx, 0, static_cast<long>(n) - 1);
    return static_cast<size_t>(idx);
  };
  return clamp_index(fy, ny_) * nx_ + clamp_index(fx, nx_);
}

geometry::Point UniformGrid::CellCenter(size_t cell) const {
  INNET_CHECK(cell < num_cells());
  size_t cy = cell / nx_;
  size_t cx = cell % nx_;
  double w = bounds_.Width() / static_cast<double>(nx_);
  double h = bounds_.Height() / static_cast<double>(ny_);
  return geometry::Point(bounds_.min_x + (static_cast<double>(cx) + 0.5) * w,
                         bounds_.min_y + (static_cast<double>(cy) + 0.5) * h);
}

geometry::Rect UniformGrid::CellBounds(size_t cell) const {
  INNET_CHECK(cell < num_cells());
  size_t cy = cell / nx_;
  size_t cx = cell % nx_;
  double w = bounds_.Width() / static_cast<double>(nx_);
  double h = bounds_.Height() / static_cast<double>(ny_);
  double x0 = bounds_.min_x + static_cast<double>(cx) * w;
  double y0 = bounds_.min_y + static_cast<double>(cy) * h;
  return geometry::Rect(x0, y0, x0 + w, y0 + h);
}

}  // namespace innet::spatial
