#include "spatial/kdtree.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

#include "util/logging.h"

namespace innet::spatial {

KdTree::KdTree(std::vector<geometry::Point> points, size_t leaf_capacity)
    : points_(std::move(points)), leaf_capacity_(std::max<size_t>(1, leaf_capacity)) {
  order_.resize(points_.size());
  std::iota(order_.begin(), order_.end(), 0u);
  if (!points_.empty()) {
    root_ = Build(0, static_cast<uint32_t>(points_.size()));
  }
}

int32_t KdTree::Build(uint32_t begin, uint32_t end) {
  Node node;
  node.begin = begin;
  node.end = end;
  node.bounds = geometry::Rect(points_[order_[begin]].x,
                               points_[order_[begin]].y,
                               points_[order_[begin]].x,
                               points_[order_[begin]].y);
  for (uint32_t i = begin; i < end; ++i) {
    node.bounds.ExpandToInclude(points_[order_[i]]);
  }
  int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  if (end - begin <= leaf_capacity_) return id;

  int axis = node.bounds.Width() >= node.bounds.Height() ? 0 : 1;
  uint32_t mid = begin + (end - begin) / 2;
  auto cmp = [this, axis](uint32_t a, uint32_t b) {
    return axis == 0 ? points_[a].x < points_[b].x : points_[a].y < points_[b].y;
  };
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, cmp);
  double split = axis == 0 ? points_[order_[mid]].x : points_[order_[mid]].y;

  int32_t left = Build(begin, mid);
  int32_t right = Build(mid, end);
  nodes_[id].axis = axis;
  nodes_[id].split = split;
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

std::vector<size_t> KdTree::RangeQuery(const geometry::Rect& range) const {
  std::vector<size_t> out;
  if (root_ >= 0) CollectRange(root_, range, &out);
  return out;
}

void KdTree::CollectRange(int32_t node_id, const geometry::Rect& range,
                          std::vector<size_t>* out) const {
  const Node& node = nodes_[node_id];
  if (!range.Intersects(node.bounds)) return;
  if (range.Contains(node.bounds)) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      out->push_back(order_[i]);
    }
    return;
  }
  if (node.axis < 0) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      if (range.Contains(points_[order_[i]])) out->push_back(order_[i]);
    }
    return;
  }
  CollectRange(node.left, range, out);
  CollectRange(node.right, range, out);
}

size_t KdTree::NearestNeighbor(const geometry::Point& query) const {
  std::vector<size_t> result = KNearest(query, 1);
  INNET_CHECK(!result.empty());
  return result[0];
}

namespace {

double RectDistanceSquared(const geometry::Rect& r,
                           const geometry::Point& p) {
  double dx = std::max({r.min_x - p.x, 0.0, p.x - r.max_x});
  double dy = std::max({r.min_y - p.y, 0.0, p.y - r.max_y});
  return dx * dx + dy * dy;
}

}  // namespace

void KdTree::SearchKnn(int32_t node_id, const geometry::Point& query,
                       size_t k,
                       std::vector<std::pair<double, size_t>>* heap) const {
  const Node& node = nodes_[node_id];
  double bound = heap->size() < k ? std::numeric_limits<double>::infinity()
                                  : heap->front().first;
  if (RectDistanceSquared(node.bounds, query) > bound) return;
  if (node.axis < 0) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      double d2 = geometry::DistanceSquared(points_[order_[i]], query);
      if (heap->size() < k) {
        heap->emplace_back(d2, order_[i]);
        std::push_heap(heap->begin(), heap->end());
      } else if (d2 < heap->front().first) {
        std::pop_heap(heap->begin(), heap->end());
        heap->back() = {d2, order_[i]};
        std::push_heap(heap->begin(), heap->end());
      }
    }
    return;
  }
  // Descend into the closer child first for tighter pruning bounds.
  double coord = node.axis == 0 ? query.x : query.y;
  int32_t near = coord <= node.split ? node.left : node.right;
  int32_t far = coord <= node.split ? node.right : node.left;
  SearchKnn(near, query, k, heap);
  SearchKnn(far, query, k, heap);
}

std::vector<size_t> KdTree::KNearest(const geometry::Point& query,
                                     size_t k) const {
  std::vector<std::pair<double, size_t>> heap;
  if (root_ >= 0 && k > 0) SearchKnn(root_, query, k, &heap);
  std::sort_heap(heap.begin(), heap.end());
  std::vector<size_t> out;
  out.reserve(heap.size());
  for (const auto& [d2, idx] : heap) out.push_back(idx);
  return out;
}

std::vector<std::vector<size_t>> KdTree::LeafPartitions() const {
  std::vector<std::vector<size_t>> cells;
  for (const Node& node : nodes_) {
    if (node.axis >= 0) continue;
    std::vector<size_t> cell;
    cell.reserve(node.end - node.begin);
    for (uint32_t i = node.begin; i < node.end; ++i) {
      cell.push_back(order_[i]);
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::vector<std::vector<size_t>> KdTree::PartitionIntoCells(
    const std::vector<geometry::Point>& points, size_t num_leaves) {
  INNET_CHECK(num_leaves > 0);
  // Priority splitting on cell population: repeatedly median-split the most
  // populated cell along its wider axis until we reach num_leaves cells.
  struct Cell {
    std::vector<size_t> indices;
  };
  auto population_less = [](const Cell& a, const Cell& b) {
    return a.indices.size() < b.indices.size();
  };
  std::priority_queue<Cell, std::vector<Cell>,
                      decltype(population_less)>
      queue(population_less);
  Cell all;
  all.indices.resize(points.size());
  std::iota(all.indices.begin(), all.indices.end(), size_t{0});
  queue.push(std::move(all));

  std::vector<Cell> done;
  while (!queue.empty() && queue.size() + done.size() < num_leaves) {
    Cell cell = queue.top();
    queue.pop();
    if (cell.indices.size() <= 1) {
      done.push_back(std::move(cell));
      continue;
    }
    geometry::Rect bounds(points[cell.indices[0]].x, points[cell.indices[0]].y,
                          points[cell.indices[0]].x,
                          points[cell.indices[0]].y);
    for (size_t idx : cell.indices) bounds.ExpandToInclude(points[idx]);
    int axis = bounds.Width() >= bounds.Height() ? 0 : 1;
    size_t mid = cell.indices.size() / 2;
    std::nth_element(cell.indices.begin(), cell.indices.begin() + mid,
                     cell.indices.end(), [&points, axis](size_t a, size_t b) {
                       return axis == 0 ? points[a].x < points[b].x
                                        : points[a].y < points[b].y;
                     });
    Cell left;
    left.indices.assign(cell.indices.begin(), cell.indices.begin() + mid);
    Cell right;
    right.indices.assign(cell.indices.begin() + mid, cell.indices.end());
    queue.push(std::move(left));
    queue.push(std::move(right));
  }

  std::vector<std::vector<size_t>> cells;
  cells.reserve(queue.size() + done.size());
  for (Cell& cell : done) {
    if (!cell.indices.empty()) cells.push_back(std::move(cell.indices));
  }
  while (!queue.empty()) {
    if (!queue.top().indices.empty()) cells.push_back(queue.top().indices);
    queue.pop();
  }
  return cells;
}

}  // namespace innet::spatial
