// Static R-tree over rectangles, bulk-loaded with Sort-Tile-Recursive (STR).
//
// Used to resolve query regions: the sensing cells fully contained in a
// rectangle (JunctionsInRect) come from a ContainedIn() search instead of a
// linear scan. R-trees are also the classic moving-object index the paper
// contrasts against (§2.1), so the module doubles as a reference structure.
#ifndef INNET_SPATIAL_RTREE_H_
#define INNET_SPATIAL_RTREE_H_

#include <cstdint>
#include <vector>

#include "geometry/rect.h"

namespace innet::spatial {

/// Immutable R-tree over a set of rectangles (indices refer to the input
/// vector).
class RTree {
 public:
  /// Bulk-loads over `boxes`; internal nodes hold up to `node_capacity`
  /// children (>= 2).
  explicit RTree(std::vector<geometry::Rect> boxes, size_t node_capacity = 16);

  size_t size() const { return boxes_.size(); }

  /// Indices of boxes intersecting `range`.
  std::vector<size_t> Intersecting(const geometry::Rect& range) const;

  /// Indices of boxes fully contained in `range`.
  std::vector<size_t> ContainedIn(const geometry::Rect& range) const;

  /// Tree height (0 for an empty tree, 1 for a single leaf level).
  size_t Height() const { return height_; }

 private:
  struct Node {
    geometry::Rect bounds;
    uint32_t first = 0;   // First child node (internal) or box slot (leaf).
    uint32_t count = 0;   // Children (internal) or boxes (leaf).
    bool leaf = true;
  };

  template <bool kContained>
  void Collect(uint32_t node, const geometry::Rect& range,
               std::vector<size_t>* out) const;

  std::vector<geometry::Rect> boxes_;
  std::vector<uint32_t> slots_;  // Permutation of box indices, leaf order.
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  size_t height_ = 0;
};

}  // namespace innet::spatial

#endif  // INNET_SPATIAL_RTREE_H_
