// Point-region QuadTree: range queries and leaf partitioning for
// QuadTree-based sampling (§4.3).
#ifndef INNET_SPATIAL_QUADTREE_H_
#define INNET_SPATIAL_QUADTREE_H_

#include <cstdint>
#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace innet::spatial {

/// Point-region QuadTree with a leaf capacity. Quadrants split around the
/// cell center; points are stored in leaves.
class QuadTree {
 public:
  /// Builds over `points` with the given leaf capacity (>= 1) and a maximum
  /// depth guard against co-located points.
  explicit QuadTree(std::vector<geometry::Point> points,
                    size_t leaf_capacity = 8, int max_depth = 32);

  size_t size() const { return points_.size(); }

  /// Indices of all points inside `range`.
  std::vector<size_t> RangeQuery(const geometry::Rect& range) const;

  /// Leaf cells as (bounds, point indices), pre-order.
  struct LeafCell {
    geometry::Rect bounds;
    std::vector<size_t> indices;
  };
  std::vector<LeafCell> LeafPartitions() const;

  /// Partitions `points` into at least `num_leaves` non-empty quad cells by
  /// splitting the most populated cell first. Returns fewer cells only when
  /// there are fewer points (or co-location prevents further splits).
  static std::vector<std::vector<size_t>> PartitionIntoCells(
      const std::vector<geometry::Point>& points, size_t num_leaves);

 private:
  struct Node {
    geometry::Rect bounds;
    int32_t children[4] = {-1, -1, -1, -1};  // All -1 for leaves.
    std::vector<uint32_t> indices;           // Leaf payload.
    bool is_leaf = true;
  };

  void Insert(int32_t node, uint32_t index, int depth);
  void Split(int32_t node, int depth);
  int QuadrantOf(const Node& node, const geometry::Point& p) const;
  void CollectRange(int32_t node, const geometry::Rect& range,
                    std::vector<size_t>* out) const;

  std::vector<geometry::Point> points_;
  std::vector<Node> nodes_;
  size_t leaf_capacity_;
  int max_depth_;
  int32_t root_ = -1;
};

}  // namespace innet::spatial

#endif  // INNET_SPATIAL_QUADTREE_H_
