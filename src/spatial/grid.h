// Uniform grid over the plane: the "virtual grid" of systematic sampling
// (§4.3) and a bucket index for point-location acceleration.
#ifndef INNET_SPATIAL_GRID_H_
#define INNET_SPATIAL_GRID_H_

#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace innet::spatial {

/// Uniform nx-by-ny grid over a bounding rectangle with points bucketed into
/// cells.
class UniformGrid {
 public:
  /// Covers `bounds` with nx * ny cells (nx, ny >= 1) and buckets `points`.
  UniformGrid(const geometry::Rect& bounds, size_t nx, size_t ny,
              const std::vector<geometry::Point>& points);

  size_t num_cells() const { return nx_ * ny_; }
  size_t nx() const { return nx_; }
  size_t ny() const { return ny_; }
  const geometry::Rect& bounds() const { return bounds_; }

  /// Flat cell index of p (points outside bounds clamp to the border cell).
  size_t CellOf(const geometry::Point& p) const;

  /// Center point of flat cell `cell`.
  geometry::Point CellCenter(size_t cell) const;

  /// Bounds of flat cell `cell`.
  geometry::Rect CellBounds(size_t cell) const;

  /// Point indices bucketed into flat cell `cell`.
  const std::vector<size_t>& PointsInCell(size_t cell) const {
    return buckets_[cell];
  }

 private:
  geometry::Rect bounds_;
  size_t nx_;
  size_t ny_;
  std::vector<std::vector<size_t>> buckets_;
};

}  // namespace innet::spatial

#endif  // INNET_SPATIAL_GRID_H_
