// innet_dataset — dataset tooling for the innet library.
//
// Subcommands:
//   generate   build a synthetic world and save it
//     --junctions N --world-size M --trips N --horizon SECONDS --seed S
//     --graph-out PATH --trips-out PATH
//   describe   print statistics of saved artifacts
//     --graph PATH [--trips PATH]
//   import     read a CSV road network (planarizing flyover crossings)
//     --csv PATH --graph-out PATH
//   export-csv write a saved network as CSV
//     --graph PATH --out PATH
//   render     draw a saved network (optionally with a deployment) to SVG
//     --graph PATH --out PATH [--sample-fraction F] [--sampler NAME]
//
// Examples:
//   innet_dataset generate --junctions 1000 --trips 3000 
//       --graph-out city.bin --trips-out trips.bin
//   innet_dataset describe --graph city.bin --trips trips.bin
//   innet_dataset render --graph city.bin --out city.svg 
//       --sample-fraction 0.1 --sampler quadtree
#include <cstdio>
#include <memory>
#include <string>

#include "core/sensor_network.h"
#include "core/sampled_graph.h"
#include "graph/shortest_path.h"
#include "io/serialize.h"
#include "mobility/road_network.h"
#include "mobility/trajectory_generator.h"
#include "sampling/samplers.h"
#include "util/flags.h"
#include "util/rng.h"
#include "viz/network_render.h"

namespace innet {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Generate(const util::FlagParser& flags) {
  mobility::RoadNetworkOptions road;
  road.num_junctions =
      static_cast<size_t>(flags.GetInt("junctions", 800));
  road.world_size = flags.GetDouble("world-size", 15000.0);
  mobility::TrajectoryOptions traffic;
  traffic.num_trajectories = static_cast<size_t>(flags.GetInt("trips", 2000));
  traffic.horizon = flags.GetDouble("horizon", 6.0 * 3600.0);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  std::string graph_out = flags.GetString("graph-out", "network.bin");
  std::string trips_out = flags.GetString("trips-out", "trips.bin");

  util::Rng rng(seed);
  graph::PlanarGraph graph = mobility::GenerateRoadNetwork(road, rng);
  std::vector<mobility::Trajectory> trips =
      mobility::GenerateTrajectories(graph, traffic, rng);
  std::printf("generated %zu junctions, %zu roads, %zu trips\n",
              graph.NumNodes(), graph.NumEdges(), trips.size());

  util::Status status = io::SaveRoadNetwork(graph, graph_out);
  if (!status.ok()) return Fail(status.ToString());
  status = io::SaveTrajectories(trips, trips_out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %s and %s\n", graph_out.c_str(), trips_out.c_str());
  return 0;
}

int Describe(const util::FlagParser& flags) {
  std::string graph_path = flags.GetString("graph");
  if (graph_path.empty()) return Fail("describe requires --graph");
  util::StatusOr<graph::PlanarGraph> graph = io::LoadRoadNetwork(graph_path);
  if (!graph.ok()) return Fail(graph.status().ToString());

  core::SensorNetwork network(std::move(*graph));
  std::printf("network %s:\n", graph_path.c_str());
  std::printf("  junctions: %zu\n", network.mobility().NumNodes());
  std::printf("  roads:     %zu\n", network.mobility().NumEdges());
  std::printf("  sensors:   %zu\n", network.NumSensors());
  std::printf("  gateways:  %zu\n", network.gateways().size());
  std::printf("  domain:    %.0f x %.0f\n", network.DomainBounds().Width(),
              network.DomainBounds().Height());
  double hops = graph::EstimateAveragePathHops(
      network.sensing().adjacency(), 32, 7);
  std::printf("  avg sensing-graph path: %.1f hops\n", hops);

  std::string trips_path = flags.GetString("trips");
  if (!trips_path.empty()) {
    auto trips = io::LoadTrajectories(trips_path, &network.mobility());
    if (!trips.ok()) return Fail(trips.status().ToString());
    network.IngestTrajectories(*trips);
    size_t hops_total = 0;
    double t_max = 0.0;
    for (const mobility::Trajectory& t : *trips) {
      hops_total += t.nodes.size() - 1;
      t_max = std::max(t_max, t.times.back());
    }
    std::printf("trips %s:\n", trips_path.c_str());
    std::printf("  count:     %zu\n", trips->size());
    std::printf("  crossings: %zu (incl. %zu v_ext entries)\n",
                network.events().size(),
                network.events().size() - hops_total);
    std::printf("  time span: %.1f h\n", t_max / 3600.0);
    std::printf("  exact-store size: %zu bytes\n",
                network.reference_store().StorageBytes());
  }
  return 0;
}

int Render(const util::FlagParser& flags) {
  std::string graph_path = flags.GetString("graph");
  std::string out = flags.GetString("out", "network.svg");
  if (graph_path.empty()) return Fail("render requires --graph");
  util::StatusOr<graph::PlanarGraph> graph = io::LoadRoadNetwork(graph_path);
  if (!graph.ok()) return Fail(graph.status().ToString());
  core::SensorNetwork network(std::move(*graph));

  double fraction = flags.GetDouble("sample-fraction", 0.0);
  std::unique_ptr<core::SampledGraph> sampled;
  if (fraction > 0.0) {
    std::string name = flags.GetString("sampler", "kd-tree");
    std::unique_ptr<sampling::SensorSampler> sampler;
    for (auto& candidate : sampling::AllSamplers()) {
      if (candidate->Name() == name) sampler = std::move(candidate);
    }
    if (sampler == nullptr) {
      return Fail("unknown sampler: " + name +
                  " (uniform|systematic|stratified|kd-tree|quadtree)");
    }
    util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
    size_t m = static_cast<size_t>(fraction *
                                   static_cast<double>(network.NumSensors()));
    std::vector<graph::NodeId> sensors =
        sampler->Select(network.sensing(), m, rng);
    sampled = std::make_unique<core::SampledGraph>(
        core::SampledGraph::FromSensors(network, std::move(sensors), {}));
    std::printf("deployment: %zu comm sensors, %zu monitored edges, %u "
                "faces\n",
                sampled->comm_sensors().size(),
                sampled->monitored_edges().size(), sampled->NumFaces());
  }
  viz::RenderOptions render;
  render.draw_sensors = sampled == nullptr;
  util::Status status =
      viz::RenderNetwork(network, sampled.get(), render, out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int Import(const util::FlagParser& flags) {
  std::string csv = flags.GetString("csv");
  std::string out = flags.GetString("graph-out", "network.bin");
  if (csv.empty()) return Fail("import requires --csv");
  util::StatusOr<io::CsvImportResult> imported = io::ImportRoadNetworkCsv(csv);
  if (!imported.ok()) return Fail(imported.status().ToString());
  std::printf(
      "imported %zu junctions, %zu roads (%zu crossings planarized)\n",
      imported->graph.NumNodes(), imported->graph.NumEdges(),
      imported->inserted_crossings);
  util::Status status = io::SaveRoadNetwork(imported->graph, out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int ExportCsv(const util::FlagParser& flags) {
  std::string graph_path = flags.GetString("graph");
  std::string out = flags.GetString("out", "network.csv");
  if (graph_path.empty()) return Fail("export-csv requires --graph");
  util::StatusOr<graph::PlanarGraph> graph = io::LoadRoadNetwork(graph_path);
  if (!graph.ok()) return Fail(graph.status().ToString());
  util::Status status = io::ExportRoadNetworkCsv(*graph, out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: innet_dataset <generate|describe|render|import|export-csv> [flags]\n"
                 "see the header of tools/innet_dataset.cc for flags\n");
    return 2;
  }
  const std::string& command = flags.positional()[0];
  int result;
  if (command == "generate") {
    result = Generate(flags);
  } else if (command == "describe") {
    result = Describe(flags);
  } else if (command == "render") {
    result = Render(flags);
  } else if (command == "import") {
    result = Import(flags);
  } else if (command == "export-csv") {
    result = ExportCsv(flags);
  } else {
    return Fail("unknown command: " + command);
  }
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", unused.c_str());
  }
  return result;
}

}  // namespace
}  // namespace innet

int main(int argc, char** argv) { return innet::Main(argc, argv); }
