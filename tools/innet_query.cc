// innet_query — ad-hoc spatiotemporal range count queries over saved
// datasets.
//
//   innet_query --graph city.bin --trips trips.bin 
//       --rect 2000,2000,8000,8000 --t1 0 --t2 3600 
//       [--kind static|transient] [--sample-fraction 0.1]
//       [--sampler kd-tree] [--bound lower|upper] [--store exact|learned]
//
// Without --sample-fraction the query runs exactly on the unsampled graph.
#include <cstdio>
#include <memory>
#include <string>

#include "innet.h"

namespace innet {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

// Parses "x0,y0,x1,y1".
bool ParseRect(const std::string& text, geometry::Rect* rect) {
  double v[4];
  int consumed = 0;
  if (std::sscanf(text.c_str(), "%lf,%lf,%lf,%lf%n", &v[0], &v[1], &v[2],
                  &v[3], &consumed) != 4 ||
      consumed != static_cast<int>(text.size())) {
    return false;
  }
  *rect = geometry::Rect::FromCorners({v[0], v[1]}, {v[2], v[3]});
  return true;
}

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  std::string graph_path = flags.GetString("graph");
  std::string trips_path = flags.GetString("trips");
  std::string rect_text = flags.GetString("rect");
  if (graph_path.empty() || trips_path.empty() || rect_text.empty()) {
    std::fprintf(stderr,
                 "usage: innet_query --graph G --trips T --rect x0,y0,x1,y1 "
                 "[--t1 S] [--t2 S] [--kind static|transient] "
                 "[--sample-fraction F] [--sampler NAME] "
                 "[--bound lower|upper] [--store exact|learned]\n");
    return 2;
  }
  geometry::Rect rect;
  if (!ParseRect(rect_text, &rect)) {
    return Fail("cannot parse --rect (want x0,y0,x1,y1)");
  }

  auto graph = io::LoadRoadNetwork(graph_path);
  if (!graph.ok()) return Fail(graph.status().ToString());
  core::SensorNetwork network(std::move(*graph));
  auto trips = io::LoadTrajectories(trips_path, &network.mobility());
  if (!trips.ok()) return Fail(trips.status().ToString());
  network.IngestTrajectories(*trips);

  core::RangeQuery query;
  query.rect = rect;
  query.junctions = network.JunctionsInRect(rect);
  if (query.junctions.empty()) {
    return Fail("query rectangle contains no sensing cell");
  }
  double t_end = network.events().empty() ? 0.0
                                          : network.events().back().time;
  query.t1 = flags.GetDouble("t1", 0.0);
  query.t2 = flags.GetDouble("t2", t_end);

  std::string kind_name = flags.GetString("kind", "static");
  core::CountKind kind = kind_name == "transient"
                             ? core::CountKind::kTransient
                             : core::CountKind::kStatic;

  std::printf("region: %zu sensing cells in [%.0f,%.0f]x[%.0f,%.0f], "
              "t in [%.0f, %.0f]\n",
              query.junctions.size(), rect.min_x, rect.max_x, rect.min_y,
              rect.max_y, query.t1, query.t2);

  double fraction = flags.GetDouble("sample-fraction", 0.0);
  if (fraction <= 0.0) {
    core::UnsampledQueryProcessor processor(network);
    core::QueryAnswer answer = processor.Answer(query, kind);
    std::printf("%s count (exact): %.0f  [sensors=%zu edges=%zu %.1fus]\n",
                kind_name.c_str(), answer.estimate, answer.nodes_accessed,
                answer.edges_accessed, answer.exec_micros);
    return 0;
  }

  // Sampled path: pick a sampler, deploy, answer with both bounds.
  std::string sampler_name = flags.GetString("sampler", "kd-tree");
  std::unique_ptr<sampling::SensorSampler> sampler;
  for (auto& candidate : sampling::AllSamplers()) {
    if (candidate->Name() == sampler_name) sampler = std::move(candidate);
  }
  if (sampler == nullptr) return Fail("unknown sampler: " + sampler_name);

  core::DeploymentOptions deployment_options;
  if (flags.GetString("store", "exact") == "learned") {
    deployment_options.store = core::StoreKind::kLearned;
    deployment_options.model_type = learned::ModelType::kPiecewiseLinear;
  }
  size_t m = static_cast<size_t>(
      fraction * static_cast<double>(network.NumSensors()));
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
  std::vector<graph::NodeId> sensors =
      sampler->Select(network.sensing(), m, rng);
  core::SampledGraph sampled =
      core::SampledGraph::FromSensors(network, std::move(sensors), {});
  core::Deployment deployment(network, std::move(sampled),
                              deployment_options, query.t2 + 1.0);
  core::SampledQueryProcessor processor = deployment.processor();

  std::string bound_name = flags.GetString("bound", "");
  for (core::BoundMode bound :
       {core::BoundMode::kLower, core::BoundMode::kUpper}) {
    if (!bound_name.empty() && bound_name != core::BoundModeName(bound)) {
      continue;
    }
    core::QueryAnswer answer = processor.Answer(query, kind, bound);
    std::printf(
        "%s count (%s, %s @%.1f%%): %.0f%s  [sensors=%zu edges=%zu "
        "%.1fus]\n",
        kind_name.c_str(), core::BoundModeName(bound), sampler_name.c_str(),
        fraction * 100.0, answer.estimate, answer.missed ? " (MISSED)" : "",
        answer.nodes_accessed, answer.edges_accessed, answer.exec_micros);
  }
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", unused.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace innet

int main(int argc, char** argv) { return innet::Main(argc, argv); }
