// innet_query — ad-hoc spatiotemporal range count queries over saved
// datasets.
//
//   innet_query --graph city.bin --trips trips.bin
//       --rect 2000,2000,8000,8000 --t1 0 --t2 3600
//       [--kind static|transient] [--sample-fraction 0.1]
//       [--sampler kd-tree] [--bound lower|upper] [--store exact|learned]
//
// Without --sample-fraction the query runs exactly on the unsampled graph.
//
// Batch mode: --batch FILE answers many queries through the parallel
// BatchQueryEngine instead of --rect. Each line of FILE is
// "x0,y0,x1,y1,t1,t2" (blank lines and #-comments skipped); --threads
// sets the worker count and --cache the boundary-cache capacity.
// --ingest-epochs N serves the batch from a live IngestPipeline instead of
// the batch-built store: the monitored events replay in N epochs of
// incremental re-freezes and the engine follows the published generations
// (docs/API.md §"Live ingestion quickstart").
//
// Durability (docs/FAULTS.md §"Process & storage faults"): with
// --ingest-epochs, --wal-dir DIR group-commits every epoch to a
// write-ahead log before it becomes visible, and --snapshot-every N
// bounds recovery replay with periodic frozen-store snapshots. After a
// crash, --recover --wal-dir DIR rebuilds the last durable store
// (snapshot + tail replay) and serves the batch from it.
//
// Observability (docs/OBSERVABILITY.md): --metrics-out=PATH dumps the
// process metrics registry on exit (Prometheus text format, or JSON lines
// when PATH ends in .json/.jsonl); --trace-out=PATH writes one JSON object
// per sampled query with its stage breakdown, --trace-sample N sampling
// 1-in-N (batch mode); --trace-chrome=PATH additionally renders the same
// sampled traces as a Chrome trace-event array for chrome://tracing /
// Perfetto; --log-level info|warn|error|off sets diagnostic verbosity.
//
// Cost accounting (docs/OBSERVABILITY.md §9): batch mode accumulates a
// per-query cost profile into a lock-free digest table (served at /queryz
// and summarized in /varz when --serve-telemetry is up).
// --slowlog-out=FILE emits a rate-limited JSON-lines record for every
// query crossing --slowlog-threshold-ms (default 10ms), carrying the cost
// profile and the query's EXPLAIN provenance.
//
// Live telemetry (docs/OBSERVABILITY.md §"Live telemetry & SLOs"):
// --serve-telemetry PORT starts an embedded HTTP endpoint on
// 127.0.0.1:PORT (0 = ephemeral; the bound port prints on stderr) serving
// /metrics, /healthz, /readyz, /varz, and /traces while the batch runs,
// backed by a background time-series collector. --slo-config FILE loads
// burn-rate objectives evaluated on every collector tick;
// --telemetry-linger SEC keeps the endpoint up after the batch finishes so
// scrapers can observe the final state; --flight-dir DIR places the
// crash-time flight-recorder dumps (default "."); --readyz-staleness SEC
// adds a /readyz probe failing when no store published for SEC seconds.
//
// EXPLAIN (docs/OBSERVABILITY.md §"Accuracy & EXPLAIN"): --explain replaces
// the human-readable answer lines with one deterministic JSON provenance
// object per answered configuration (resolved faces, dead space, boundary
// size, store family, cache path, interval). --explain-svg=PATH
// additionally renders the resolved face union and integrated boundary
// over the network (sampled runs only). In batch mode, --shadow-sample N
// re-executes 1-in-N answered queries on the exact unsampled path off the
// hot path and reports the measured relative error on stderr (metrics:
// innet_accuracy_rel_error and friends).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "innet.h"

namespace innet {
namespace {

int Fail(const std::string& message) {
  INNET_LOG(ERROR) << message;
  return 1;
}

// Shared exit path: dump the process registry when --metrics-out was given
// and warn about unrecognized flags.
int Finish(util::FlagParser& flags, const std::string& metrics_out) {
  if (!metrics_out.empty()) {
    // Build identity and uptime ride along on every file export, matching
    // what a live /metrics scrape reports.
    obs::Gauge& uptime =
        obs::RegisterBuildInfo(obs::MetricsRegistry::Global());
    uptime.Set(obs::UptimeSeconds());
    if (!obs::ExportMetricsToFile(obs::MetricsRegistry::Global(),
                                  metrics_out)) {
      return 1;
    }
  }
  for (const std::string& unused : flags.UnusedFlags()) {
    INNET_LOG(WARN) << "unused flag --" << unused;
  }
  return 0;
}

// Parses "x0,y0,x1,y1".
bool ParseRect(const std::string& text, geometry::Rect* rect) {
  double v[4];
  int consumed = 0;
  if (std::sscanf(text.c_str(), "%lf,%lf,%lf,%lf%n", &v[0], &v[1], &v[2],
                  &v[3], &consumed) != 4 ||
      consumed != static_cast<int>(text.size())) {
    return false;
  }
  *rect = geometry::Rect::FromCorners({v[0], v[1]}, {v[2], v[3]});
  return true;
}

// Builds the sampled deployment shared by the single-query and batch paths:
// sampler selection, sensor draw, graph construction, event ingestion.
std::optional<core::Deployment> BuildSampledDeployment(
    util::FlagParser& flags, const core::SensorNetwork& network,
    double fraction, double time_scale, std::string* error) {
  std::string sampler_name = flags.GetString("sampler", "kd-tree");
  std::unique_ptr<sampling::SensorSampler> sampler;
  for (auto& candidate : sampling::AllSamplers()) {
    if (candidate->Name() == sampler_name) sampler = std::move(candidate);
  }
  if (sampler == nullptr) {
    *error = "unknown sampler: " + sampler_name;
    return std::nullopt;
  }
  core::DeploymentOptions deployment_options;
  if (flags.GetString("store", "exact") == "learned") {
    deployment_options.store = core::StoreKind::kLearned;
    deployment_options.model_type = learned::ModelType::kPiecewiseLinear;
  }
  size_t m = static_cast<size_t>(
      fraction * static_cast<double>(network.NumSensors()));
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
  std::vector<graph::NodeId> sensors =
      sampler->Select(network.sensing(), m, rng);
  core::SampledGraph sampled =
      core::SampledGraph::FromSensors(network, std::move(sensors), {});
  return core::Deployment(network, std::move(sampled), deployment_options,
                          time_scale);
}

// Batch mode: answers a query file through the BatchQueryEngine.
int BatchMain(util::FlagParser& flags, const core::SensorNetwork& network,
              double t_end, core::CountKind kind,
              const std::string& kind_name, double fraction,
              const std::string& batch_path) {
  if (fraction <= 0.0) {
    return Fail("--batch requires --sample-fraction > 0 (the batch engine "
                "serves sampled deployments)");
  }
  std::ifstream in(batch_path);
  if (!in) return Fail("cannot open batch file: " + batch_path);
  std::vector<core::RangeQuery> queries;
  double max_t2 = t_end;
  std::string line;
  size_t lineno = 0;
  size_t skipped_empty = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    core::RangeQuery query;
    std::string parse_error;
    if (!core::ParseBatchQueryLine(line, network, &query, &parse_error)) {
      return Fail(batch_path + ":" + std::to_string(lineno) + ": " +
                  parse_error);
    }
    if (query.junctions.empty()) {
      ++skipped_empty;
      continue;
    }
    max_t2 = std::max(max_t2, query.t2);
    queries.push_back(std::move(query));
  }
  if (queries.empty()) return Fail("batch file holds no non-empty query");
  if (skipped_empty > 0) {
    INNET_LOG(WARN) << "skipped " << skipped_empty
                    << " queries with no sensing cell";
  }

  std::string error;
  std::optional<core::Deployment> deployment =
      BuildSampledDeployment(flags, network, fraction, max_t2 + 1.0, &error);
  if (!deployment.has_value()) return Fail(error);

  // The trace ring feeds --trace-out and the /traces telemetry endpoint;
  // it outlives every telemetry object declared below (the server holds an
  // unowned pointer into it).
  std::string trace_out = flags.GetString("trace-out");
  std::string trace_chrome = flags.GetString("trace-chrome");
  bool serve_telemetry = flags.Has("serve-telemetry");
  obs::TracerOptions tracer_options;
  tracer_options.sample_every =
      static_cast<uint64_t>(flags.GetInt("trace-sample", 1));
  tracer_options.ring_capacity = 4096;
  obs::Tracer tracer(tracer_options);

  // Per-query cost accounting (docs/OBSERVABILITY.md §9): the digest
  // table aggregates every answered query; the slow-query log (when
  // requested, or memory-only under live telemetry so /queryz?slow=1
  // works) records outliers. Both outlive the engine and the telemetry
  // server, which hold unowned pointers into them.
  obs::QueryDigestTable digest;
  std::string slowlog_out = flags.GetString("slowlog-out");
  std::unique_ptr<obs::SlowQueryLog> slowlog;
  if (!slowlog_out.empty() || serve_telemetry) {
    obs::SlowQueryLogOptions slowlog_options;
    slowlog_options.threshold_micros =
        flags.GetDouble("slowlog-threshold-ms", 10.0) * 1000.0;
    slowlog_options.path = slowlog_out;
    slowlog_options.registry = &obs::MetricsRegistry::Global();
    slowlog = std::make_unique<obs::SlowQueryLog>(slowlog_options);
  }

  // Arm the black box before anything publishes a store so the crash ring
  // covers the whole serving lifetime, recovery and initial publish
  // included.
  if (serve_telemetry) {
    obs::RegisterBuildInfo(obs::MetricsRegistry::Global());
    obs::FlightRecorder::Global().Configure(
        flags.GetString("flight-dir", "."));
    obs::FlightRecorder::Global().InstallSignalHandlers();
    faults::CrashPointRegistry::Global().SetPreCrashHook(
        &obs::FlightRecorder::CrashPointHook);
  }

  // Live-replay serving (--ingest-epochs N): instead of the deployment's
  // batch-built store, stream the monitored crossing events through an
  // IngestPipeline in N epochs and serve from its published frozen store
  // via the handle-mode engine. The pipeline's innet_ingest_* metrics land
  // in the global registry, so --metrics-out exports them alongside the
  // engine's. Answers are identical to the batch-built store by the
  // incremental re-freeze identity guarantee (docs/PERFORMANCE.md).
  std::unique_ptr<runtime::IngestPipeline> pipeline;
  std::string wal_dir = flags.GetString("wal-dir");
  int ingest_epochs = flags.GetInt("ingest-epochs", 0);

  // Recovery serving (--recover): rebuild the last durable store from the
  // WAL directory (newest usable snapshot + tail replay) and serve the
  // batch from it through a local handle — the same handle-mode read path
  // live ingest uses (docs/FAULTS.md §"Process & storage faults").
  std::optional<forms::FrozenStoreHandle> recovered;
  if (flags.GetBool("recover")) {
    runtime::RecoveryOptions recovery_options;
    recovery_options.wal_dir = wal_dir;
    recovery_options.num_edges = network.TotalEdgeSpace();
    recovery_options.registry = &obs::MetricsRegistry::Global();
    runtime::RecoveryManager manager(recovery_options);
    auto state = manager.Recover();
    if (!state.ok()) return Fail(state.status().ToString());
    recovered.emplace();
    recovered->Restore(state->store, state->generation);
    std::fprintf(stderr,
                 "recover: epoch %llu generation %llu | %llu durable events "
                 "(%llu from snapshot, %llu replayed from WAL tail)\n",
                 static_cast<unsigned long long>(state->durable_epoch),
                 static_cast<unsigned long long>(state->generation),
                 static_cast<unsigned long long>(state->durable_events),
                 static_cast<unsigned long long>(state->snapshot_events),
                 static_cast<unsigned long long>(state->replayed_events));
  }

  if (ingest_epochs > 0) {
    runtime::IngestPipelineOptions pipeline_options;
    pipeline_options.registry = &obs::MetricsRegistry::Global();
    if (!wal_dir.empty()) {
      // Durable ingest: every epoch close group-commits to the WAL before
      // it becomes visible to readers; --snapshot-every N additionally
      // bounds recovery replay with periodic snapshots.
      pipeline_options.durability.wal_dir = wal_dir;
      pipeline_options.durability.snapshot_every_epochs =
          static_cast<size_t>(flags.GetInt("snapshot-every", 0));
    }
    pipeline = std::make_unique<runtime::IngestPipeline>(
        network.TotalEdgeSpace(), pipeline_options);
  }

  // Live telemetry plane (--serve-telemetry PORT): endpoint + collector +
  // SLO engine + flight recorder, up BEFORE the ingest replay so mid-run
  // scrapes observe generations advancing. Declared after `pipeline`, so
  // everything holding a pipeline pointer dies first.
  std::unique_ptr<obs::TimeSeriesCollector> collector;
  std::unique_ptr<obs::SloEngine> slo;
  std::unique_ptr<obs::TelemetryServer> telemetry;
  if (serve_telemetry) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    collector =
        std::make_unique<obs::TimeSeriesCollector>(registry,
                                                   obs::TimeSeriesOptions{});
    collector->AddDerivedGauge(
        "innet_uptime_seconds", "",
        [](double) { return obs::UptimeSeconds(); });
    runtime::IngestPipeline* live = pipeline.get();
    if (live != nullptr) {
      collector->AddDerivedGauge(
          "innet_refreeze_staleness_seconds",
          "Seconds since the last frozen-store publish",
          [live](double) { return live->SecondsSinceLastPublish(); });
    }

    std::string slo_path = flags.GetString("slo-config");
    if (!slo_path.empty()) {
      std::vector<obs::SloObjective> objectives;
      if (!obs::LoadSloConfigFile(slo_path, &objectives)) {
        return Fail("cannot load --slo-config " + slo_path);
      }
      slo = std::make_unique<obs::SloEngine>(registry, *collector,
                                             std::move(objectives));
      obs::SloEngine* slo_ptr = slo.get();
      collector->AddSampleListener(
          [slo_ptr](double) { slo_ptr->Evaluate(); });
    }

    obs::TelemetryServerOptions server_options;
    server_options.port =
        static_cast<uint16_t>(flags.GetInt("serve-telemetry", 0));
    telemetry =
        std::make_unique<obs::TelemetryServer>(registry, server_options);
    telemetry->AttachCollector(collector.get());
    telemetry->AttachSloEngine(slo.get());
    telemetry->AttachTracer(&tracer);
    telemetry->AttachDigestTable(&digest);
    telemetry->AttachSlowLog(slowlog.get());
    obs::Counter* wal_errors =
        &registry.GetCounter("innet_wal_errors_total");
    telemetry->AddReadinessProbe(
        "wal_healthy", [wal_errors] { return wal_errors->Value() == 0; });
    if (live != nullptr) {
      telemetry->AddReadinessProbe("store_published", [live] {
        return live->handle().Generation() >= 1;
      });
      auto last_generation = std::make_shared<std::atomic<uint64_t>>(0);
      telemetry->AddReadinessProbe(
          "generation_advancing", [live, last_generation] {
            uint64_t g = live->handle().Generation();
            return g >= last_generation->exchange(g);
          });
      if (flags.Has("readyz-staleness")) {
        double limit = flags.GetDouble("readyz-staleness", 30.0);
        telemetry->AddReadinessProbe(
            "refreeze_staleness", [live, limit] {
              return live->SecondsSinceLastPublish() <= limit;
            });
      }
    }
    if (!telemetry->Start()) {
      return Fail("cannot start telemetry server");
    }
    std::fprintf(stderr, "telemetry: serving on 127.0.0.1:%u\n",
                 static_cast<unsigned>(telemetry->Port()));
    collector->Start();
  }

  if (pipeline != nullptr) {
    size_t chunk =
        network.events().size() / static_cast<size_t>(ingest_epochs) + 1;
    size_t in_epoch = 0;
    for (const mobility::CrossingEvent& event : network.events()) {
      if (!deployment->graph().IsMonitored(event.edge)) continue;
      pipeline->Push(event);
      if (++in_epoch >= chunk) {
        pipeline->CloseEpochAndWait();
        in_epoch = 0;
      }
    }
    pipeline->CloseEpochAndWait();
    std::fprintf(stderr,
                 "ingest: %llu monitored events in %llu epochs, serving "
                 "store generation %llu\n",
                 static_cast<unsigned long long>(pipeline->EventsIngested()),
                 static_cast<unsigned long long>(pipeline->EpochsPublished()),
                 static_cast<unsigned long long>(
                     pipeline->handle().Generation()));
  }

  // The serving process exports through the global registry, so the
  // engine's counters and the --metrics-out dump are the same storage.
  runtime::BatchEngineOptions engine_options;
  engine_options.num_threads =
      static_cast<size_t>(flags.GetInt("threads", 0));
  engine_options.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache", 4096));
  engine_options.registry = &obs::MetricsRegistry::Global();
  engine_options.digest = &digest;
  engine_options.slowlog = slowlog.get();

  if (!trace_out.empty() || !trace_chrome.empty() || serve_telemetry) {
    engine_options.tracer = &tracer;
  }

  // Shadow accuracy checks (destroyed after the engine, which holds a
  // pointer into it).
  std::unique_ptr<obs::AccuracyMonitor> accuracy;
  if (flags.Has("shadow-sample")) {
    obs::AccuracyMonitorOptions accuracy_options;
    accuracy_options.shadow_every =
        static_cast<uint64_t>(flags.GetInt("shadow-sample", 8));
    accuracy_options.total_cells = network.mobility().NumNodes();
    accuracy_options.registry = &obs::MetricsRegistry::Global();
    accuracy = std::make_unique<obs::AccuracyMonitor>(accuracy_options);
    engine_options.accuracy = accuracy.get();
  }

  std::optional<runtime::BatchQueryEngine> engine_storage;
  if (pipeline != nullptr) {
    engine_storage.emplace(deployment->graph(), pipeline->handle(),
                           engine_options);
  } else if (recovered.has_value()) {
    engine_storage.emplace(deployment->graph(), *recovered, engine_options);
  } else {
    engine_storage.emplace(deployment->graph(), deployment->store(),
                           engine_options);
  }
  runtime::BatchQueryEngine& engine = *engine_storage;

  bool explain = flags.GetBool("explain");
  std::string bound_name = flags.GetString("bound", "");
  util::Timer timer;
  for (core::BoundMode bound :
       {core::BoundMode::kLower, core::BoundMode::kUpper}) {
    if (!bound_name.empty() && bound_name != core::BoundModeName(bound)) {
      continue;
    }
    if (explain) {
      std::vector<obs::ExplainRecord> explains;
      engine.AnswerBatchExplained(queries, kind, bound, &explains);
      for (const obs::ExplainRecord& record : explains) {
        std::printf("%s\n", record.ToJson().c_str());
      }
      continue;
    }
    std::vector<core::QueryAnswer> answers =
        engine.AnswerBatch(queries, kind, bound);
    for (size_t i = 0; i < answers.size(); ++i) {
      const core::QueryAnswer& a = answers[i];
      std::printf("%zu %s %s %.0f%s [sensors=%zu edges=%zu]\n", i,
                  kind_name.c_str(), core::BoundModeName(bound), a.estimate,
                  a.missed ? " MISSED" : "", a.nodes_accessed,
                  a.edges_accessed);
    }
  }
  double wall_seconds = timer.ElapsedSeconds();

  runtime::BatchEngineSnapshot snap = engine.Snapshot();
  std::fprintf(stderr,
               "batch: %llu queries in %.3fs (%.0f q/s, %zu threads) | "
               "cache %llu hits / %llu misses | missed lower=%llu "
               "upper=%llu | latency p50=%.1fus p95=%.1fus\n",
               static_cast<unsigned long long>(snap.queries_answered),
               wall_seconds,
               static_cast<double>(snap.queries_answered) /
                   std::max(wall_seconds, 1e-9),
               engine.NumThreads(),
               static_cast<unsigned long long>(snap.cache_hits),
               static_cast<unsigned long long>(snap.cache_misses),
               static_cast<unsigned long long>(snap.missed_lower),
               static_cast<unsigned long long>(snap.missed_upper),
               snap.latency_p50_micros, snap.latency_p95_micros);
  if (accuracy != nullptr) {
    engine.FlushShadow();
    std::fprintf(stderr,
                 "shadow: %llu checks (1-in-%llu) | mean |rel err|=%.4f "
                 "signed=%.4f\n",
                 static_cast<unsigned long long>(accuracy->Comparisons()),
                 static_cast<unsigned long long>(
                     accuracy->options().shadow_every),
                 accuracy->MeanAbsRelError(), accuracy->MeanSignedRelError());
  }
  if (slowlog != nullptr) {
    std::fprintf(stderr,
                 "slowlog: %llu records (%llu suppressed by rate limit)\n",
                 static_cast<unsigned long long>(slowlog->Records()),
                 static_cast<unsigned long long>(slowlog->Suppressed()));
  }
  if (!trace_out.empty() || !trace_chrome.empty()) {
    // Snapshot (not drain): both exporters render the same view, and the
    // ring stays populated so GET /traces keeps serving through the
    // telemetry linger below.
    std::vector<std::unique_ptr<obs::QueryTrace>> traces =
        tracer.SnapshotRing();
    if (!trace_out.empty() &&
        !obs::ExportTracesToFile(traces, trace_out)) {
      return 1;
    }
    if (!trace_chrome.empty() &&
        !obs::ExportTracesChromeToFile(traces, trace_chrome)) {
      return 1;
    }
  }
  // Keep the telemetry endpoint up so external scrapers (CI smoke jobs,
  // a curious operator) can observe the finished run before exit.
  double linger = flags.GetDouble("telemetry-linger", 0.0);
  if (telemetry != nullptr && linger > 0.0) {
    std::fprintf(stderr, "telemetry: lingering %.1fs for scrapes\n", linger);
    util::Timer linger_timer;
    while (linger_timer.ElapsedSeconds() < linger) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return Finish(flags, flags.GetString("metrics-out"));
}

int Main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  std::string log_level_name = flags.GetString("log-level");
  if (!log_level_name.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level_name, &level)) {
      return Fail("unknown --log-level (want info|warn|error|off): " +
                  log_level_name);
    }
    SetMinLogLevel(level);
  }
  // 1-in-N sampling knobs must be positive: N == 0 would divide by zero in
  // the samplers and a negative N is always a typo. Validate before any
  // file I/O so bad invocations fail fast.
  if (flags.Has("trace-sample") && flags.GetInt("trace-sample", 1) <= 0) {
    return Fail("--trace-sample must be a positive integer (trace 1-in-N "
                "queries); got " + flags.GetString("trace-sample"));
  }
  if (flags.Has("shadow-sample") && flags.GetInt("shadow-sample", 8) <= 0) {
    return Fail("--shadow-sample must be a positive integer (shadow-check "
                "1-in-N queries); got " + flags.GetString("shadow-sample"));
  }
  if (flags.Has("ingest-epochs") && flags.GetInt("ingest-epochs", 0) <= 0) {
    return Fail("--ingest-epochs must be a positive integer (replay the "
                "event stream in N live-ingest epochs); got " +
                flags.GetString("ingest-epochs"));
  }
  std::string graph_path = flags.GetString("graph");
  std::string trips_path = flags.GetString("trips");
  std::string rect_text = flags.GetString("rect");
  std::string batch_path = flags.GetString("batch");
  // Durability flags are batch-mode-only and interdependent; reject bad
  // combinations before any file I/O.
  if (flags.Has("ingest-epochs") && batch_path.empty()) {
    return Fail("--ingest-epochs serves a batch from a live pipeline; it "
                "requires --batch FILE");
  }
  std::string wal_dir = flags.GetString("wal-dir");
  bool recover = flags.GetBool("recover");
  if (flags.Has("snapshot-every")) {
    if (flags.GetInt("snapshot-every", 0) <= 0) {
      return Fail("--snapshot-every must be a positive integer (snapshot "
                  "the frozen store every N epochs); got " +
                  flags.GetString("snapshot-every"));
    }
    if (wal_dir.empty()) {
      return Fail("--snapshot-every requires --wal-dir DIR (snapshots live "
                  "beside the WAL segments)");
    }
  }
  if (recover && wal_dir.empty()) {
    return Fail("--recover rebuilds the store from a write-ahead log; it "
                "requires --wal-dir DIR");
  }
  if (recover && flags.Has("ingest-epochs")) {
    return Fail("--recover and --ingest-epochs are mutually exclusive: "
                "recovery serves the durable store, ingest re-replays the "
                "event stream");
  }
  if (!wal_dir.empty() && batch_path.empty()) {
    return Fail("--wal-dir only applies to batch mode; add --batch FILE");
  }
  if (!wal_dir.empty() && !recover && !flags.Has("ingest-epochs")) {
    return Fail("--wal-dir requires --ingest-epochs N (durable ingest) or "
                "--recover (serve the last durable store)");
  }
  // Telemetry flags: the live endpoint serves the batch-mode process, and
  // the dependent knobs only mean something once it is up.
  if (flags.Has("serve-telemetry")) {
    int port = flags.GetInt("serve-telemetry", -1);
    if (port < 0 || port > 65535) {
      return Fail("--serve-telemetry wants a TCP port in 0..65535 (0 picks "
                  "an ephemeral port); got " +
                  flags.GetString("serve-telemetry"));
    }
    if (batch_path.empty()) {
      return Fail("--serve-telemetry exposes the live batch-serving "
                  "process; it requires --batch FILE");
    }
  }
  if (flags.Has("slo-config") && !flags.Has("serve-telemetry")) {
    return Fail("--slo-config evaluates objectives over the live telemetry "
                "rings; it requires --serve-telemetry PORT");
  }
  if (flags.Has("telemetry-linger")) {
    if (!flags.Has("serve-telemetry")) {
      return Fail("--telemetry-linger keeps the telemetry endpoint up after "
                  "the batch; it requires --serve-telemetry PORT");
    }
    if (flags.GetDouble("telemetry-linger", 0.0) < 0.0) {
      return Fail("--telemetry-linger must be >= 0 seconds; got " +
                  flags.GetString("telemetry-linger"));
    }
  }
  if (flags.Has("flight-dir") && !flags.Has("serve-telemetry")) {
    return Fail("--flight-dir places the flight-recorder black box; it "
                "requires --serve-telemetry PORT");
  }
  if (flags.Has("readyz-staleness") && !flags.Has("serve-telemetry")) {
    return Fail("--readyz-staleness adds a /readyz probe; it requires "
                "--serve-telemetry PORT");
  }
  // Cost-accounting flags (docs/OBSERVABILITY.md §9) are batch-mode
  // observability; reject bad combinations before any file I/O.
  if (flags.Has("slowlog-out")) {
    if (flags.GetString("slowlog-out").empty()) {
      return Fail("--slowlog-out wants a file path for the JSON-lines "
                  "slow-query log");
    }
    if (batch_path.empty()) {
      return Fail("--slowlog-out records slow queries from the batch "
                  "engine; it requires --batch FILE");
    }
  }
  if (flags.Has("slowlog-threshold-ms")) {
    if (!flags.Has("slowlog-out")) {
      return Fail("--slowlog-threshold-ms tunes the slow-query log; it "
                  "requires --slowlog-out FILE");
    }
    if (flags.GetDouble("slowlog-threshold-ms", 0.0) <= 0.0) {
      return Fail("--slowlog-threshold-ms must be > 0 milliseconds; got " +
                  flags.GetString("slowlog-threshold-ms"));
    }
  }
  if (flags.Has("trace-chrome")) {
    if (flags.GetString("trace-chrome").empty()) {
      return Fail("--trace-chrome wants a file path for the Chrome "
                  "trace-event JSON");
    }
    if (batch_path.empty()) {
      return Fail("--trace-chrome exports the batch-mode trace ring; it "
                  "requires --batch FILE");
    }
  }
  if (graph_path.empty() || trips_path.empty() ||
      (rect_text.empty() && batch_path.empty())) {
    std::fprintf(stderr,
                 "usage: innet_query --graph G --trips T --rect x0,y0,x1,y1 "
                 "[--t1 S] [--t2 S] [--kind static|transient] "
                 "[--sample-fraction F] [--sampler NAME] "
                 "[--bound lower|upper] [--store exact|learned]\n"
                 "   or: innet_query --graph G --trips T --batch FILE "
                 "--sample-fraction F [--threads N] [--cache N] [--kind K] "
                 "[--bound B] [--sampler NAME] [--store exact|learned] "
                 "[--ingest-epochs N]\n"
                 "durability: [--wal-dir DIR] [--snapshot-every N] "
                 "[--recover]\n"
                 "observability: [--metrics-out PATH] [--trace-out PATH] "
                 "[--trace-chrome PATH] [--trace-sample N] "
                 "[--shadow-sample N] [--slowlog-out FILE] "
                 "[--slowlog-threshold-ms MS] [--explain] "
                 "[--explain-svg PATH] [--log-level info|warn|error|off]\n"
                 "telemetry: [--serve-telemetry PORT] [--slo-config FILE] "
                 "[--telemetry-linger SEC] [--flight-dir DIR] "
                 "[--readyz-staleness SEC]\n");
    return 2;
  }

  auto graph = io::LoadRoadNetwork(graph_path);
  if (!graph.ok()) return Fail(graph.status().ToString());
  core::SensorNetwork network(std::move(*graph));
  auto trips = io::LoadTrajectories(trips_path, &network.mobility());
  if (!trips.ok()) return Fail(trips.status().ToString());
  network.IngestTrajectories(*trips);
  double t_end = network.events().empty() ? 0.0
                                          : network.events().back().time;

  std::string kind_name = flags.GetString("kind", "static");
  core::CountKind kind = kind_name == "transient"
                             ? core::CountKind::kTransient
                             : core::CountKind::kStatic;
  double fraction = flags.GetDouble("sample-fraction", 0.0);

  if (!batch_path.empty()) {
    return BatchMain(flags, network, t_end, kind, kind_name, fraction,
                     batch_path);
  }

  geometry::Rect rect;
  if (!ParseRect(rect_text, &rect)) {
    return Fail("cannot parse --rect (want x0,y0,x1,y1)");
  }
  core::RangeQuery query;
  query.rect = rect;
  query.junctions = network.JunctionsInRect(rect);
  if (query.junctions.empty()) {
    return Fail("query rectangle contains no sensing cell");
  }
  query.t1 = flags.GetDouble("t1", 0.0);
  query.t2 = flags.GetDouble("t2", t_end);

  bool explain = flags.GetBool("explain");
  std::string explain_svg = flags.GetString("explain-svg");
  if (!explain_svg.empty() && fraction <= 0.0) {
    return Fail("--explain-svg renders the resolved face union of a sampled "
                "deployment; it requires --sample-fraction > 0");
  }

  if (!explain) {
    std::printf("region: %zu sensing cells in [%.0f,%.0f]x[%.0f,%.0f], "
                "t in [%.0f, %.0f]\n",
                query.junctions.size(), rect.min_x, rect.max_x, rect.min_y,
                rect.max_y, query.t1, query.t2);
  }

  if (fraction <= 0.0) {
    core::UnsampledQueryProcessor processor(network);
    obs::ExplainRecord record;
    core::QueryAnswer answer =
        processor.Answer(query, kind, explain ? &record : nullptr);
    if (explain) {
      std::printf("%s\n", record.ToJson().c_str());
    } else {
      std::printf("%s count (exact): %.0f  [sensors=%zu edges=%zu %.1fus]\n",
                  kind_name.c_str(), answer.estimate, answer.nodes_accessed,
                  answer.edges_accessed, answer.exec_micros);
    }
    return Finish(flags, flags.GetString("metrics-out"));
  }

  // Sampled path: pick a sampler, deploy, answer with both bounds.
  std::string sampler_name = flags.GetString("sampler", "kd-tree");
  std::string error;
  std::optional<core::Deployment> deployment = BuildSampledDeployment(
      flags, network, fraction, query.t2 + 1.0, &error);
  if (!deployment.has_value()) return Fail(error);
  core::SampledQueryProcessor processor = deployment->processor();

  std::string bound_name = flags.GetString("bound", "");
  obs::ExplainRecord last_explain;
  bool answered_any = false;
  for (core::BoundMode bound :
       {core::BoundMode::kLower, core::BoundMode::kUpper}) {
    if (!bound_name.empty() && bound_name != core::BoundModeName(bound)) {
      continue;
    }
    obs::ExplainRecord record;
    core::QueryAnswer answer = processor.Answer(
        query, kind, bound, nullptr,
        explain || !explain_svg.empty() ? &record : nullptr);
    last_explain = record;
    answered_any = true;
    if (explain) {
      std::printf("%s\n", record.ToJson().c_str());
    } else {
      std::printf(
          "%s count (%s, %s @%.1f%%): %.0f%s  [sensors=%zu edges=%zu "
          "%.1fus]\n",
          kind_name.c_str(), core::BoundModeName(bound), sampler_name.c_str(),
          fraction * 100.0, answer.estimate, answer.missed ? " (MISSED)" : "",
          answer.nodes_accessed, answer.edges_accessed, answer.exec_micros);
    }
  }
  if (!explain_svg.empty() && answered_any) {
    util::Status status = viz::RenderExplainOverlay(
        network, deployment->graph(), last_explain, rect, explain_svg);
    if (!status.ok()) return Fail(status.ToString());
  }
  return Finish(flags, flags.GetString("metrics-out"));
}

}  // namespace
}  // namespace innet

int main(int argc, char** argv) { return innet::Main(argc, argv); }
